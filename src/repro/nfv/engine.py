"""The platform physics: knobs + offered load -> throughput, misses, power.

This module is the simulator's substitute for the paper's physical
testbed.  Given a service chain, its knob settings, and the offered
traffic for one control interval, :class:`PacketEngine` computes

* the chain's achievable packet rate (pipeline bottleneck analysis over
  the NFs, Rx-ring delivery, receive livelock under overload, NIC line
  rate),
* the LLC miss rate,
* per-NF and aggregate CPU utilization,
* node power (Fan et al. model) and interval energy.

Per-packet cost of NF *i* (cycles)::

    cpp_i = compute(nf, pkt)                        # base + per_byte * pkt
          + ring_call_cycles / batch                # batching amortization
          + mbuf_cycles / sqrt(batch)               # bulk mbuf alloc/free
          + state_lines * p_miss * pen_eff          # table walks
          + touched_lines * mem_factor *
              (p_hit * hit_eff + p_miss' * pen_eff) # payload access
          + inter_nf_handoff  (i > 0)

where ``pen_eff = miss_penalty * (1 - prefetch_efficiency(batch))`` —
batching lets the prefetchers hide DRAM latency — and the payload
hit probability comes from DDIO for the first NF (DMA ring vs. DDIO
capacity) and from LLC residency of the in-flight batch for later NFs.
State-walk and residency miss probabilities derive from the chain's
working set vs. its CAT allocation (``capacity_miss_ratio``).

Service rate of NF *i* = ``cpu_share * f / cpp_i``; the chain rate is the
pipeline minimum; achieved rate additionally respects the Rx-ring
delivery ratio (DMA too small => ring overflow drops), receive livelock
(dropping packets still costs rx cycles), and NIC line rate.  These are
the mechanisms §3 measures in isolation, so the micro-benchmark figures
(Figs. 1-4) fall out of the same code path the RL environment uses.

CPU utilization depends on the polling mode: the Baseline's DPDK
poll-mode driver "uses complete cycles of dedicated cores" (util = 100%
on allocated cores); GreenNFV's "mix of callback and polling" lets
utilization track actual work with a small polling overhead.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.hw.cache import (
    capacity_miss_ratio,
    ddio_hit_ratio,
    prefetch_efficiency,
)
from repro.hw.dma import DmaBufferModel
from repro.hw.power import ServerPowerModel
from repro.hw.server import ServerSpec
from repro.nfv.chain import ServiceChain
from repro.nfv.knobs import KnobSettings
from repro.utils.units import pps_to_gbps


class PollingMode(enum.Enum):
    """How NF cores wait for packets."""

    #: DPDK poll-mode driver: allocated cores busy-spin at 100%.
    POLL = "poll"
    #: GreenNFV's mix of callback and polling: cores sleep when idle,
    #: utilization tracks work plus a small polling overhead.
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class EngineParams:
    """Calibration constants of the physics model.

    These place the simulator's response surface in the same regime as
    the paper's testbed measurements.  They are pinned by
    ``tests/test_calibration.py``, which asserts the §3 micro-benchmark
    shapes and the §5 ordering (who wins, by roughly what factor); none
    of the orderings depend on their exact values.
    """

    #: Cycles per ring dequeue/enqueue call, amortized over a batch.
    ring_call_cycles: float = 420.0
    #: mbuf alloc/free cost; bulk operations amortize as 1/sqrt(batch).
    mbuf_cycles: float = 80.0
    #: Cycles to hand a packet between NFs through a shared ring.
    inter_nf_handoff_cycles: float = 60.0
    #: Cycles the first NF spends on a packet that is received and then
    #: dropped under overload (receive livelock).
    rx_drop_cycles: float = 120.0
    #: Latency-bound fraction of payload line accesses (the rest pipeline
    #: behind them).
    mem_factor: float = 0.55
    #: Cold misses per batch (descriptor ring, NF code/stack warmup).
    cold_lines_per_batch: float = 48.0
    #: Fraction of polling-loop overhead under ADAPTIVE mode.
    adaptive_poll_overhead: float = 0.04
    #: Infrastructure cores (ONVM Rx/Tx threads) always running.
    infra_cores: float = 2.0
    #: Utilization of the infra cores under POLL / ADAPTIVE modes.
    infra_util_poll: float = 1.0
    infra_util_adaptive: float = 0.35
    #: Locality exponent of the capacity miss model.
    cache_locality: float = 2.0
    #: Extra LLC demand (bytes) from co-tenants when CAT is disabled,
    #: in units of the allocatable region (the Baseline shares the cache
    #: with everything else on the socket).
    no_cat_background_share: float = 3.0
    #: Miss-ratio multiplier from uncontrolled sharing when CAT is off.
    no_cat_contention: float = 1.35


@dataclass
class NFTelemetry:
    """Per-NF interval measurements."""

    name: str
    cycles_per_packet: float
    service_rate_pps: float
    utilization: float
    misses_per_packet: float


@dataclass
class TelemetrySample:
    """Everything the controller reads back after one interval.

    This is the simulator's equivalent of the state-collection step in
    Algorithm 3: throughput ``T``, energy ``E``, CPU utilization ``xi``
    and packet arrival rate ``Omega``, plus diagnostics.
    """

    dt_s: float
    offered_pps: float
    achieved_pps: float
    packet_bytes: float
    throughput_gbps: float
    llc_miss_rate_per_s: float
    cpu_utilization: float  # fraction of provisioned cores busy, 0..1
    cpu_cores_busy: float  # absolute busy-core count ("CPU usage %" / 100)
    power_w: float
    energy_j: float
    dropped_pps: float
    latency_s: float
    arrival_rate_pps: float
    per_nf: list[NFTelemetry] = field(default_factory=list)

    @property
    def energy_per_mpacket(self) -> float:
        """Energy per million processed packets (Fig. 1(c)/4(b) metric)."""
        packets = self.achieved_pps * self.dt_s
        if packets <= 0:
            return float("inf")
        return self.energy_j / (packets / 1e6)

    @property
    def energy_efficiency(self) -> float:
        """Throughput per unit energy, lambda = T / E (Eq. 3), Gbps/kJ."""
        if self.energy_j <= 0:
            return 0.0
        return self.throughput_gbps / (self.energy_j / 1e3)


class PacketEngine:
    """Computes one chain's interval telemetry on one node's hardware."""

    def __init__(
        self,
        server: ServerSpec | None = None,
        params: EngineParams | None = None,
        polling: PollingMode = PollingMode.ADAPTIVE,
        *,
        cat_enabled: bool = True,
        park_idle_cores: bool = True,
    ):
        self.server = server or ServerSpec()
        self.params = params or EngineParams()
        self.polling = polling
        self.cat_enabled = cat_enabled
        self.park_idle_cores = park_idle_cores
        self.power_model = ServerPowerModel(self.server.power)
        self.dma_model = DmaBufferModel(self.server.dma, self.server.llc)

    # -- cache environment ---------------------------------------------------

    def effective_llc_bytes(self, requested_bytes: float) -> tuple[float, float]:
        """(effective allocation, contention multiplier) for a chain.

        With CAT the chain keeps its CLOS grant exclusively.  Without CAT
        ("all other components set to default values" — the Baseline and
        EE-Pstate do not manage the cache) the chain competes with
        background tenants for the whole allocatable region, shrinking its
        effective share and adding conflict misses.
        """
        if self.cat_enabled:
            return requested_bytes, 1.0
        llc = self.server.llc
        allocatable = llc.way_bytes * llc.allocatable_ways
        bg = self.params.no_cat_background_share * allocatable
        share = allocatable * requested_bytes / (requested_bytes + bg)
        return share, self.params.no_cat_contention

    # -- per-NF cost -------------------------------------------------------

    def nf_cycles_per_packet(
        self,
        chain: ServiceChain,
        nf_index: int,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, float]:
        """(cycles/packet, misses/packet) for one NF under the knobs.

        ``llc_bytes`` is the chain's granted LLC capacity (NFs of a chain
        share one CLOS); ``contention`` multiplies miss probabilities for
        cross-chain interference.
        """
        nf = chain.nfs[nf_index]
        llc = self.server.llc
        p = self.params

        pf = prefetch_efficiency(knobs.batch_size)
        pen_eff = llc.miss_penalty_cycles * (1.0 - pf)
        hit_eff = llc.hit_cycles * (1.0 - pf)

        # Working set the chain keeps live in its allocation.
        ws = chain.total_state_bytes + knobs.batch_size * packet_bytes
        base_miss = capacity_miss_ratio(ws, llc_bytes, locality=p.cache_locality)
        p_miss = float(min(1.0, base_miss * contention))

        # State-table walks.
        state_cycles = nf.state_lines_touched * p_miss * pen_eff
        misses = nf.state_lines_touched * p_miss

        # Payload access: DDIO landing for the first NF, LLC residency of
        # the in-flight batch for the rest.
        touched = nf.touched_lines(packet_bytes, llc.line_bytes)
        if nf_index == 0:
            p_hit = self.dma_model.llc_spill_hit_ratio(knobs.dma_bytes, llc_bytes)
            p_hit = float(max(0.0, p_hit * (1.0 - p_miss * 0.5)))
        else:
            p_hit = 1.0 - p_miss
        payload_cycles = touched * p.mem_factor * (
            p_hit * hit_eff + (1.0 - p_hit) * pen_eff
        )
        misses += touched * (1.0 - p_hit)

        # Cold misses + per-call overheads amortized over the batch.
        cold_cycles = p.cold_lines_per_batch * pen_eff / knobs.batch_size
        misses += p.cold_lines_per_batch / knobs.batch_size
        overhead = (
            p.ring_call_cycles / knobs.batch_size
            + p.mbuf_cycles / math.sqrt(knobs.batch_size)
        )

        cycles = nf.cycles_for_packet(packet_bytes) + overhead + state_cycles
        cycles += payload_cycles + cold_cycles
        if nf_index > 0:
            cycles += p.inter_nf_handoff_cycles
        return float(cycles), float(misses)

    # -- power ---------------------------------------------------------------

    def node_power(
        self, busy_cores: float, allocated_cores: float, freq_ghz: float
    ) -> float:
        """Node power for a given busy/allocated core split.

        Utilization for the Fan model is the busy fraction of the whole
        socket.  Unallocated cores are parked in C6 (8% residual idle
        power) when ``park_idle_cores`` is set; otherwise they idle at
        full C0/C1 power, as on the untuned Baseline.
        """
        total = float(self.server.cpu.total_cores)
        allocated = float(min(total, max(allocated_cores, 0.0)))
        busy = float(np.clip(busy_cores, 0.0, total))
        u = busy / total
        parked = total - allocated
        if self.park_idle_cores:
            idle_fraction = (allocated + 0.08 * parked) / total
        else:
            idle_fraction = 1.0
        return float(self.power_model.power(u, freq_ghz, idle_fraction=idle_fraction))

    # -- chain-level -------------------------------------------------------

    def chain_service_rate(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, list[float], list[float]]:
        """Pipeline service rate and per-NF (cpp, misses) lists.

        Each NF gets ``cpu_share`` cores at ``cpu_freq_ghz``; the chain
        rate is the slowest stage.
        """
        freq_hz = knobs.cpu_freq_ghz * 1e9
        cpps: list[float] = []
        misses: list[float] = []
        for i in range(len(chain)):
            cpp, m = self.nf_cycles_per_packet(
                chain, i, knobs, packet_bytes, llc_bytes=llc_bytes, contention=contention
            )
            cpps.append(cpp)
            misses.append(m)
        rates = [knobs.cpu_share * freq_hz / cpp for cpp in cpps]
        return min(rates), cpps, misses

    def step(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        offered_pps: float,
        packet_bytes: float,
        dt_s: float = 1.0,
        *,
        llc_bytes: float | None = None,
        contention: float | None = None,
        include_power: bool = True,
    ) -> TelemetrySample:
        """Simulate one control interval for a single chain.

        Parameters
        ----------
        llc_bytes:
            Chain's requested LLC capacity; default derives it from the
            ``llc_fraction`` knob against the allocatable region.  The
            effective capacity additionally reflects CAT being disabled.
        contention:
            Cross-chain miss-ratio multiplier (>= 1) computed by the node
            when several chains share the socket; default 1 (or the
            no-CAT contention when CAT is disabled).
        """
        if offered_pps < 0 or packet_bytes <= 0 or dt_s <= 0:
            raise ValueError("offered rate/packet size/dt must be valid")
        llc = self.server.llc
        if llc_bytes is None:
            llc_bytes = knobs.llc_fraction * llc.way_bytes * llc.allocatable_ways
        eff_llc, cat_contention = self.effective_llc_bytes(llc_bytes)
        eff_contention = cat_contention if contention is None else max(contention, cat_contention)

        # 1. NIC admission (line rate).
        nic_cap = self.server.nic.max_pps(packet_bytes)
        admitted = min(offered_pps, nic_cap)

        # 2. Rx-ring delivery (DMA buffer absorption).
        delivery = self.dma_model.delivery_ratio(knobs.dma_bytes, packet_bytes, admitted)
        delivered = admitted * delivery

        # 3. Pipeline bottleneck.
        chain_rate, cpps, misses_pp = self.chain_service_rate(
            chain, knobs, packet_bytes, llc_bytes=eff_llc, contention=eff_contention
        )
        achieved = min(delivered, chain_rate)

        # 4. Receive livelock: when the first NF cannot keep up, the
        #    packets it receives and drops still cost rx cycles, eating
        #    into its packet-processing budget.
        freq_hz = knobs.cpu_freq_ghz * 1e9
        c0_capacity = knobs.cpu_share * freq_hz
        rx = self.params.rx_drop_cycles
        if delivered * cpps[0] > c0_capacity and cpps[0] > rx:
            nf0_rate = max(0.0, (c0_capacity - delivered * rx) / (cpps[0] - rx))
            achieved = min(achieved, nf0_rate)

        # 5. Per-NF utilization.
        per_nf: list[NFTelemetry] = []
        busy_cores = 0.0
        for i, nf in enumerate(chain.nfs):
            capacity = knobs.cpu_share * freq_hz
            work = achieved * cpps[i]
            if i == 0:
                work += max(0.0, delivered - achieved) * rx
            util = min(1.0, work / capacity) if capacity > 0 else 0.0
            if self.polling == PollingMode.POLL:
                util = 1.0 if knobs.cpu_share > 0 else 0.0
            else:
                util = min(1.0, util + self.params.adaptive_poll_overhead)
            per_nf.append(
                NFTelemetry(
                    name=nf.name,
                    cycles_per_packet=cpps[i],
                    service_rate_pps=knobs.cpu_share * freq_hz / cpps[i],
                    utilization=util,
                    misses_per_packet=misses_pp[i],
                )
            )
            busy_cores += knobs.cpu_share * util

        # Infrastructure (Rx/Tx) threads.
        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        infra_busy = self.params.infra_cores * infra_util
        allocated_cores = knobs.cpu_share * len(chain) + self.params.infra_cores
        total_busy = busy_cores + infra_busy

        # 6. Node power via the Fan et al. model.  Power utilization is
        #    node-level (busy fraction of all cores), so consuming more
        #    cycles always costs more energy; cores the chain did not
        #    allocate sit parked in C6 (GreenNFV "turn[s] off idle CPU
        #    cores"), shrinking idle power, unless parking is disabled
        #    (the Baseline leaves every core online).
        cpu_utilization = min(1.0, total_busy / allocated_cores)
        if include_power:
            power_w = self.node_power(
                total_busy, allocated_cores, knobs.cpu_freq_ghz
            )
            energy_j = power_w * dt_s
        else:
            power_w = 0.0
            energy_j = 0.0

        # 7. Diagnostics.
        total_misses_pp = float(sum(misses_pp))
        miss_rate = achieved * total_misses_pp
        dropped = max(0.0, offered_pps - achieved)
        # Latency: batch fill time + per-NF processing + queueing headroom.
        proc_s = sum(cpps) / freq_hz if freq_hz > 0 else float("inf")
        fill_s = knobs.batch_size / max(achieved, 1.0)
        utilization_peak = (
            min(1.0, achieved / chain_rate) if chain_rate > 0 else 1.0
        )
        queue_s = proc_s * utilization_peak / max(1e-6, 1.0 - min(utilization_peak, 0.999))
        latency_s = fill_s + proc_s + queue_s

        return TelemetrySample(
            dt_s=dt_s,
            offered_pps=offered_pps,
            achieved_pps=achieved,
            packet_bytes=packet_bytes,
            throughput_gbps=pps_to_gbps(achieved, packet_bytes),
            llc_miss_rate_per_s=miss_rate,
            cpu_utilization=cpu_utilization,
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=dropped,
            latency_s=latency_s,
            arrival_rate_pps=offered_pps,
            per_nf=per_nf,
        )

    def fixed_volume_energy(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        offered_pps: float,
        packet_bytes: float,
        volume_packets: float,
        **step_kwargs,
    ) -> tuple[float, TelemetrySample]:
        """Energy to process a fixed packet volume (Fig. 3's metric).

        Runs one representative interval to get rate and power, then
        charges ``power * volume / rate``.  Returns (energy_j, sample).
        """
        if volume_packets <= 0:
            raise ValueError("volume must be positive")
        sample = self.step(chain, knobs, offered_pps, packet_bytes, 1.0, **step_kwargs)
        if sample.achieved_pps <= 0:
            return float("inf"), sample
        duration = volume_packets / sample.achieved_pps
        return sample.power_w * duration, sample
