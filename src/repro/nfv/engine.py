"""The platform physics: knobs + offered load -> throughput, misses, power.

This module is the simulator's substitute for the paper's physical
testbed.  Given a service chain, its knob settings, and the offered
traffic for one control interval, :class:`PacketEngine` computes

* the chain's achievable packet rate (pipeline bottleneck analysis over
  the NFs, Rx-ring delivery, receive livelock under overload, NIC line
  rate),
* the LLC miss rate,
* per-NF and aggregate CPU utilization,
* node power (Fan et al. model) and interval energy.

Per-packet cost of NF *i* (cycles)::

    cpp_i = compute(nf, pkt)                        # base + per_byte * pkt
          + ring_call_cycles / batch                # batching amortization
          + mbuf_cycles / sqrt(batch)               # bulk mbuf alloc/free
          + state_lines * p_miss * pen_eff          # table walks
          + touched_lines * mem_factor *
              (p_hit * hit_eff + p_miss' * pen_eff) # payload access
          + inter_nf_handoff  (i > 0)

where ``pen_eff = miss_penalty * (1 - prefetch_efficiency(batch))`` —
batching lets the prefetchers hide DRAM latency — and the payload
hit probability comes from DDIO for the first NF (DMA ring vs. DDIO
capacity) and from LLC residency of the in-flight batch for later NFs.
State-walk and residency miss probabilities derive from the chain's
working set vs. its CAT allocation (``capacity_miss_ratio``).

Service rate of NF *i* = ``cpu_share * f / cpp_i``; the chain rate is the
pipeline minimum; achieved rate additionally respects the Rx-ring
delivery ratio (DMA too small => ring overflow drops), receive livelock
(dropping packets still costs rx cycles), and NIC line rate.  These are
the mechanisms §3 measures in isolation, so the micro-benchmark figures
(Figs. 1-4) fall out of the same code path the RL environment uses.

CPU utilization depends on the polling mode: the Baseline's DPDK
poll-mode driver "uses complete cycles of dedicated cores" (util = 100%
on allocated cores); GreenNFV's "mix of callback and polling" lets
utilization track actual work with a small polling overhead.

The implementation is array-native: the per-NF cost model is evaluated
over whole chains at once from an immutable, cached :class:`ChainProfile`
(the NF catalog constants of a chain laid out as NumPy arrays), and
:meth:`PacketEngine.step_batch` evaluates a K-knob x L-load grid in one
vectorized call — the fast path the figure scans, knob searches and
scenario sweeps run on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.hw.cache import (
    capacity_miss_ratio,
    ddio_hit_ratio,
    prefetch_efficiency,
)
from repro.hw.dma import DmaBufferModel
from repro.hw.power import ServerPowerModel
from repro.hw.server import ServerSpec
from repro.nfv.chain import ServiceChain
from repro.nfv.knobs import KnobSettings
from repro.utils.units import pps_to_gbps


class PollingMode(enum.Enum):
    """How NF cores wait for packets."""

    #: DPDK poll-mode driver: allocated cores busy-spin at 100%.
    POLL = "poll"
    #: GreenNFV's mix of callback and polling: cores sleep when idle,
    #: utilization tracks work plus a small polling overhead.
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class EngineParams:
    """Calibration constants of the physics model.

    These place the simulator's response surface in the same regime as
    the paper's testbed measurements.  They are pinned by
    ``tests/test_calibration.py``, which asserts the §3 micro-benchmark
    shapes and the §5 ordering (who wins, by roughly what factor); none
    of the orderings depend on their exact values.
    """

    #: Cycles per ring dequeue/enqueue call, amortized over a batch.
    ring_call_cycles: float = 420.0
    #: mbuf alloc/free cost; bulk operations amortize as 1/sqrt(batch).
    mbuf_cycles: float = 80.0
    #: Cycles to hand a packet between NFs through a shared ring.
    inter_nf_handoff_cycles: float = 60.0
    #: Cycles the first NF spends on a packet that is received and then
    #: dropped under overload (receive livelock).
    rx_drop_cycles: float = 120.0
    #: Latency-bound fraction of payload line accesses (the rest pipeline
    #: behind them).
    mem_factor: float = 0.55
    #: Cold misses per batch (descriptor ring, NF code/stack warmup).
    cold_lines_per_batch: float = 48.0
    #: Fraction of polling-loop overhead under ADAPTIVE mode.
    adaptive_poll_overhead: float = 0.04
    #: Infrastructure cores (ONVM Rx/Tx threads) always running.
    infra_cores: float = 2.0
    #: Utilization of the infra cores under POLL / ADAPTIVE modes.
    infra_util_poll: float = 1.0
    infra_util_adaptive: float = 0.35
    #: Locality exponent of the capacity miss model.
    cache_locality: float = 2.0
    #: Extra LLC demand (bytes) from co-tenants when CAT is disabled,
    #: in units of the allocatable region (the Baseline shares the cache
    #: with everything else on the socket).
    no_cat_background_share: float = 3.0
    #: Miss-ratio multiplier from uncontrolled sharing when CAT is off.
    no_cat_contention: float = 1.35


@dataclass(frozen=True)
class ChainProfile:
    """A chain's per-NF cost constants laid out as immutable arrays.

    The arrays depend only on the chain and the packet size, so profiles
    are cached per ``(chain, packet_bytes, line_bytes)`` and shared by
    every engine evaluation — the scalar :meth:`PacketEngine.step` and
    the grid :meth:`PacketEngine.step_batch` both start from here.
    """

    names: tuple[str, ...]
    #: Pure compute cycles per packet per NF (base + per_byte * pkt).
    compute_cycles: np.ndarray
    #: State-table cache lines dereferenced per packet per NF.
    state_lines: np.ndarray
    #: Frame cache lines each NF reads per packet.
    touched_lines: np.ndarray
    total_state_bytes: float
    packet_bytes: float

    def __len__(self) -> int:
        return len(self.names)


@lru_cache(maxsize=1024)
def chain_profile(
    chain: ServiceChain, packet_bytes: float, line_bytes: float = 64.0
) -> ChainProfile:
    """Build (or fetch the cached) :class:`ChainProfile` for a chain.

    ``ServiceChain`` is a frozen value type, so profiles are memoized on
    the (chain, packet size, cache-line size) triple.
    """
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    compute = np.asarray(
        [nf.cycles_for_packet(packet_bytes) for nf in chain.nfs], dtype=np.float64
    )
    state_lines = np.asarray(
        [nf.state_lines_touched for nf in chain.nfs], dtype=np.float64
    )
    touched = np.asarray(
        [nf.touched_lines(packet_bytes, line_bytes) for nf in chain.nfs],
        dtype=np.float64,
    )
    for arr in (compute, state_lines, touched):
        arr.flags.writeable = False
    return ChainProfile(
        names=tuple(nf.name for nf in chain.nfs),
        compute_cycles=compute,
        state_lines=state_lines,
        touched_lines=touched,
        total_state_bytes=chain.total_state_bytes,
        packet_bytes=float(packet_bytes),
    )


@dataclass
class NFTelemetry:
    """Per-NF interval measurements."""

    name: str
    cycles_per_packet: float
    service_rate_pps: float
    utilization: float
    misses_per_packet: float


@dataclass
class TelemetrySample:
    """Everything the controller reads back after one interval.

    This is the simulator's equivalent of the state-collection step in
    Algorithm 3: throughput ``T``, energy ``E``, CPU utilization ``xi``
    and packet arrival rate ``Omega``, plus diagnostics.
    """

    dt_s: float
    offered_pps: float
    achieved_pps: float
    packet_bytes: float
    throughput_gbps: float
    llc_miss_rate_per_s: float
    cpu_utilization: float  # fraction of provisioned cores busy, 0..1
    cpu_cores_busy: float  # absolute busy-core count ("CPU usage %" / 100)
    power_w: float
    energy_j: float
    dropped_pps: float
    latency_s: float
    arrival_rate_pps: float
    per_nf: list[NFTelemetry] = field(default_factory=list)

    @property
    def energy_per_mpacket(self) -> float:
        """Energy per million processed packets (Fig. 1(c)/4(b) metric)."""
        packets = self.achieved_pps * self.dt_s
        if packets <= 0:
            return float("inf")
        return self.energy_j / (packets / 1e6)

    @property
    def energy_efficiency(self) -> float:
        """Throughput per unit energy, lambda = T / E (Eq. 3), Gbps/kJ."""
        if self.energy_j <= 0:
            return 0.0
        return self.throughput_gbps / (self.energy_j / 1e3)


@dataclass
class BatchTelemetry:
    """Telemetry of a K-knob x L-load grid evaluated in one call.

    Grid quantities have shape ``(K, L)``; per-NF quantities depend only
    on the knobs and have shape ``(K, n_nfs)``.  Row ``k`` corresponds to
    ``knobs[k]``; column ``l`` to ``offered_pps[l]``.
    """

    dt_s: float
    packet_bytes: float
    offered_pps: np.ndarray  # (L,)
    achieved_pps: np.ndarray  # (K, L)
    throughput_gbps: np.ndarray  # (K, L)
    llc_miss_rate_per_s: np.ndarray  # (K, L)
    cpu_utilization: np.ndarray  # (K, L)
    cpu_cores_busy: np.ndarray  # (K, L)
    power_w: np.ndarray  # (K, L)
    energy_j: np.ndarray  # (K, L)
    dropped_pps: np.ndarray  # (K, L)
    latency_s: np.ndarray  # (K, L)
    chain_rate_pps: np.ndarray  # (K,)
    cycles_per_packet: np.ndarray  # (K, n)
    misses_per_packet: np.ndarray  # (K, n)
    service_rate_pps: np.ndarray  # (K, n)
    nf_utilization: np.ndarray  # (K, L, n)
    nf_names: tuple[str, ...] = ()

    @property
    def shape(self) -> tuple[int, int]:
        """(K knob settings, L offered loads)."""
        return self.achieved_pps.shape

    @property
    def energy_per_mpacket(self) -> np.ndarray:
        """Energy per million processed packets across the grid."""
        packets = self.achieved_pps * self.dt_s
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(
                packets > 0, self.energy_j / (packets / 1e6), np.inf
            )
        return out

    @property
    def energy_efficiency(self) -> np.ndarray:
        """Gbps per kJ across the grid (Eq. 3's lambda)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(
                self.energy_j > 0,
                self.throughput_gbps / (self.energy_j / 1e3),
                0.0,
            )
        return out

    def sample(self, k: int, l: int) -> TelemetrySample:
        """Materialize one grid point as a full :class:`TelemetrySample`."""
        per_nf = [
            NFTelemetry(
                name=name,
                cycles_per_packet=float(self.cycles_per_packet[k, i]),
                service_rate_pps=float(self.service_rate_pps[k, i]),
                utilization=float(self.nf_utilization[k, l, i]),
                misses_per_packet=float(self.misses_per_packet[k, i]),
            )
            for i, name in enumerate(self.nf_names)
        ]
        return TelemetrySample(
            dt_s=self.dt_s,
            offered_pps=float(self.offered_pps[l]),
            achieved_pps=float(self.achieved_pps[k, l]),
            packet_bytes=self.packet_bytes,
            throughput_gbps=float(self.throughput_gbps[k, l]),
            llc_miss_rate_per_s=float(self.llc_miss_rate_per_s[k, l]),
            cpu_utilization=float(self.cpu_utilization[k, l]),
            cpu_cores_busy=float(self.cpu_cores_busy[k, l]),
            power_w=float(self.power_w[k, l]),
            energy_j=float(self.energy_j[k, l]),
            dropped_pps=float(self.dropped_pps[k, l]),
            latency_s=float(self.latency_s[k, l]),
            arrival_rate_pps=float(self.offered_pps[l]),
            per_nf=per_nf,
        )


def _knob_arrays(
    knobs_grid,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(cpu_share, freq_ghz, llc_fraction, dma_bytes, batch) columns.

    Accepts a sequence of :class:`KnobSettings` or an ``(K, 5)`` array in
    :meth:`KnobSettings.as_array` layout (dma in MB).
    """
    if isinstance(knobs_grid, np.ndarray):
        arr = np.asarray(knobs_grid, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 5:
            raise ValueError(f"knob grid array must have shape (K, 5), got {arr.shape}")
        share, freq, llc_frac = arr[:, 0], arr[:, 1], arr[:, 2]
        dma_bytes = arr[:, 3] * 1e6
        batch = np.round(arr[:, 4])
    else:
        knobs_list = list(knobs_grid)
        if not knobs_list:
            raise ValueError("knob grid must contain at least one setting")
        share = np.asarray([k.cpu_share for k in knobs_list], dtype=np.float64)
        freq = np.asarray([k.cpu_freq_ghz for k in knobs_list], dtype=np.float64)
        llc_frac = np.asarray([k.llc_fraction for k in knobs_list], dtype=np.float64)
        dma_bytes = np.asarray([k.dma_bytes for k in knobs_list], dtype=np.float64)
        batch = np.asarray([float(k.batch_size) for k in knobs_list], dtype=np.float64)
    if np.any(share <= 0) or np.any(freq <= 0) or np.any(batch < 1):
        raise ValueError("knob grid contains invalid cpu_share/freq/batch values")
    if np.any(llc_frac <= 0) or np.any(llc_frac > 1.0) or np.any(dma_bytes <= 0):
        raise ValueError("knob grid contains invalid llc_fraction/dma values")
    return share, freq, llc_frac, dma_bytes, batch


class PacketEngine:
    """Computes one chain's interval telemetry on one node's hardware."""

    def __init__(
        self,
        server: ServerSpec | None = None,
        params: EngineParams | None = None,
        polling: PollingMode = PollingMode.ADAPTIVE,
        *,
        cat_enabled: bool = True,
        park_idle_cores: bool = True,
    ):
        self.server = server or ServerSpec()
        self.params = params or EngineParams()
        self.polling = polling
        self.cat_enabled = cat_enabled
        self.park_idle_cores = park_idle_cores
        self.power_model = ServerPowerModel(self.server.power)
        self.dma_model = DmaBufferModel(self.server.dma, self.server.llc)

    # -- cache environment ---------------------------------------------------

    def effective_llc_bytes(self, requested_bytes):
        """(effective allocation, contention multiplier) for a chain.

        With CAT the chain keeps its CLOS grant exclusively.  Without CAT
        ("all other components set to default values" — the Baseline and
        EE-Pstate do not manage the cache) the chain competes with
        background tenants for the whole allocatable region, shrinking its
        effective share and adding conflict misses.  Accepts a scalar or
        an array of requested capacities.
        """
        if self.cat_enabled:
            if np.isscalar(requested_bytes):
                return requested_bytes, 1.0
            return np.asarray(requested_bytes, dtype=np.float64), 1.0
        llc = self.server.llc
        allocatable = llc.way_bytes * llc.allocatable_ways
        bg = self.params.no_cat_background_share * allocatable
        share = allocatable * requested_bytes / (requested_bytes + bg)
        return share, self.params.no_cat_contention

    # -- per-NF cost -------------------------------------------------------

    def _chain_costs(
        self,
        profile: ChainProfile,
        batch,
        dma_bytes,
        llc_bytes,
        contention,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cycles/packet, misses/packet) for every NF of a chain at once.

        ``batch``/``dma_bytes``/``llc_bytes``/``contention`` are scalars
        (shape ``()``) or knob-grid columns of shape ``(K, 1)``; the NF
        axis is last, so results have shape ``(n,)`` or ``(K, n)``.
        """
        llc = self.server.llc
        p = self.params
        scalar = np.ndim(batch) == 0

        pf = prefetch_efficiency(batch)
        pen_eff = llc.miss_penalty_cycles * (1.0 - pf)
        hit_eff = llc.hit_cycles * (1.0 - pf)

        # Working set the chain keeps live in its allocation.
        ws = profile.total_state_bytes + batch * profile.packet_bytes
        base_miss = capacity_miss_ratio(ws, llc_bytes, locality=p.cache_locality)

        # Payload access: DDIO landing for the first NF, LLC residency of
        # the in-flight batch for the rest.
        p_hit0 = self.dma_model.llc_spill_hit_ratio(dma_bytes, llc_bytes)
        if scalar:
            p_miss = min(1.0, base_miss * contention)
            p_hit0 = max(0.0, p_hit0 * (1.0 - p_miss * 0.5))
            p_hit = np.full(len(profile), 1.0 - p_miss)
            p_hit[0] = p_hit0
        else:
            p_miss = np.minimum(1.0, base_miss * contention)
            p_hit0 = np.maximum(0.0, p_hit0 * (1.0 - p_miss * 0.5))
            nf_shape = np.broadcast_shapes(np.shape(p_miss), (len(profile),))
            p_hit = np.broadcast_to(np.asarray(1.0 - p_miss), nf_shape).copy()
            p_hit[..., 0] = np.reshape(p_hit0, np.shape(p_miss))[..., 0]

        # State-table walks.
        state_cycles = profile.state_lines * p_miss * pen_eff
        misses = profile.state_lines * p_miss

        payload_cycles = profile.touched_lines * p.mem_factor * (
            p_hit * hit_eff + (1.0 - p_hit) * pen_eff
        )
        misses = misses + profile.touched_lines * (1.0 - p_hit)

        # Cold misses + per-call overheads amortized over the batch.
        cold_cycles = p.cold_lines_per_batch * pen_eff / batch
        misses = misses + p.cold_lines_per_batch / batch
        overhead = p.ring_call_cycles / batch + p.mbuf_cycles / np.sqrt(batch)

        cycles = profile.compute_cycles + overhead + state_cycles
        cycles = cycles + (payload_cycles + cold_cycles)
        cycles[..., 1:] = cycles[..., 1:] + p.inter_nf_handoff_cycles
        return cycles, misses

    def nf_cycles_per_packet(
        self,
        chain: ServiceChain,
        nf_index: int,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, float]:
        """(cycles/packet, misses/packet) for one NF under the knobs.

        ``llc_bytes`` is the chain's granted LLC capacity (NFs of a chain
        share one CLOS); ``contention`` multiplies miss probabilities for
        cross-chain interference.  The whole chain is evaluated at once
        (the per-NF terms share every knob-dependent factor), so callers
        that need all NFs should use :meth:`chain_service_rate` instead.
        """
        profile = chain_profile(chain, packet_bytes, self.server.llc.line_bytes)
        cycles, misses = self._chain_costs(
            profile, float(knobs.batch_size), knobs.dma_bytes, llc_bytes, contention
        )
        return float(cycles[nf_index]), float(misses[nf_index])

    # -- power ---------------------------------------------------------------

    def node_power(self, busy_cores, allocated_cores, freq_ghz):
        """Node power for a given busy/allocated core split.

        Utilization for the Fan model is the busy fraction of the whole
        socket.  Unallocated cores are parked in C6 (8% residual idle
        power) when ``park_idle_cores`` is set; otherwise they idle at
        full C0/C1 power, as on the untuned Baseline.  All three inputs
        broadcast, so grid evaluations price power in one call.
        """
        total = float(self.server.cpu.total_cores)
        if (
            np.isscalar(busy_cores)
            and np.isscalar(allocated_cores)
            and np.isscalar(freq_ghz)
        ):
            allocated = float(min(total, max(allocated_cores, 0.0)))
            busy = float(min(max(busy_cores, 0.0), total))
            u = busy / total
            parked = total - allocated
            if self.park_idle_cores:
                idle_fraction = (allocated + 0.08 * parked) / total
            else:
                idle_fraction = 1.0
            return float(
                self.power_model.power(u, freq_ghz, idle_fraction=idle_fraction)
            )
        allocated = np.minimum(total, np.maximum(allocated_cores, 0.0))
        busy = np.clip(busy_cores, 0.0, total)
        u = busy / total
        parked = total - allocated
        if self.park_idle_cores:
            idle_fraction = (allocated + 0.08 * parked) / total
        else:
            idle_fraction = np.ones_like(np.asarray(u, dtype=np.float64))
        out = self.power_model.power(u, freq_ghz, idle_fraction=idle_fraction)
        return np.asarray(out)

    # -- chain-level -------------------------------------------------------

    def chain_service_rate(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, list[float], list[float]]:
        """Pipeline service rate and per-NF (cpp, misses) lists.

        Each NF gets ``cpu_share`` cores at ``cpu_freq_ghz``; the chain
        rate is the slowest stage.
        """
        profile = chain_profile(chain, packet_bytes, self.server.llc.line_bytes)
        cycles, misses = self._chain_costs(
            profile, float(knobs.batch_size), knobs.dma_bytes, llc_bytes, contention
        )
        freq_hz = knobs.cpu_freq_ghz * 1e9
        rates = knobs.cpu_share * freq_hz / cycles
        return float(rates.min()), [float(c) for c in cycles], [float(m) for m in misses]

    def step(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        offered_pps: float,
        packet_bytes: float,
        dt_s: float = 1.0,
        *,
        llc_bytes: float | None = None,
        contention: float | None = None,
        include_power: bool = True,
    ) -> TelemetrySample:
        """Simulate one control interval for a single chain.

        Parameters
        ----------
        llc_bytes:
            Chain's requested LLC capacity; default derives it from the
            ``llc_fraction`` knob against the allocatable region.  The
            effective capacity additionally reflects CAT being disabled.
        contention:
            Cross-chain miss-ratio multiplier (>= 1) computed by the node
            when several chains share the socket; default 1 (or the
            no-CAT contention when CAT is disabled).
        """
        if offered_pps < 0 or packet_bytes <= 0 or dt_s <= 0:
            raise ValueError("offered rate/packet size/dt must be valid")
        llc = self.server.llc
        if llc_bytes is None:
            llc_bytes = knobs.llc_fraction * llc.way_bytes * llc.allocatable_ways
        eff_llc, cat_contention = self.effective_llc_bytes(llc_bytes)
        eff_contention = cat_contention if contention is None else max(contention, cat_contention)

        profile = chain_profile(chain, packet_bytes, llc.line_bytes)
        cpps, misses_pp = self._chain_costs(
            profile, float(knobs.batch_size), knobs.dma_bytes, eff_llc, eff_contention
        )

        # 1. NIC admission (line rate).
        nic_cap = self.server.nic.max_pps(packet_bytes)
        admitted = min(offered_pps, nic_cap)

        # 2. Rx-ring delivery (DMA buffer absorption).
        delivery = self.dma_model.delivery_ratio(knobs.dma_bytes, packet_bytes, admitted)
        delivered = admitted * delivery

        # 3. Pipeline bottleneck.
        freq_hz = knobs.cpu_freq_ghz * 1e9
        rates = knobs.cpu_share * freq_hz / cpps
        chain_rate = float(rates.min())
        achieved = min(delivered, chain_rate)

        # 4. Receive livelock: when the first NF cannot keep up, the
        #    packets it receives and drops still cost rx cycles, eating
        #    into its packet-processing budget.
        c0_capacity = knobs.cpu_share * freq_hz
        rx = self.params.rx_drop_cycles
        cpp0 = float(cpps[0])
        if delivered * cpp0 > c0_capacity and cpp0 > rx:
            nf0_rate = max(0.0, (c0_capacity - delivered * rx) / (cpp0 - rx))
            achieved = min(achieved, nf0_rate)

        # 5. Per-NF utilization.
        capacity = knobs.cpu_share * freq_hz
        work = achieved * cpps
        work[0] = work[0] + max(0.0, delivered - achieved) * rx
        if capacity > 0:
            util = np.minimum(1.0, work / capacity)
        else:
            util = np.zeros_like(work)
        if self.polling == PollingMode.POLL:
            util = np.full_like(util, 1.0 if knobs.cpu_share > 0 else 0.0)
        else:
            util = np.minimum(1.0, util + self.params.adaptive_poll_overhead)
        busy_cores = float(np.sum(knobs.cpu_share * util))
        per_nf = [
            NFTelemetry(
                name=profile.names[i],
                cycles_per_packet=float(cpps[i]),
                service_rate_pps=float(rates[i]),
                utilization=float(util[i]),
                misses_per_packet=float(misses_pp[i]),
            )
            for i in range(len(profile))
        ]

        # Infrastructure (Rx/Tx) threads.
        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        infra_busy = self.params.infra_cores * infra_util
        allocated_cores = knobs.cpu_share * len(chain) + self.params.infra_cores
        total_busy = busy_cores + infra_busy

        # 6. Node power via the Fan et al. model.  Power utilization is
        #    node-level (busy fraction of all cores), so consuming more
        #    cycles always costs more energy; cores the chain did not
        #    allocate sit parked in C6 (GreenNFV "turn[s] off idle CPU
        #    cores"), shrinking idle power, unless parking is disabled
        #    (the Baseline leaves every core online).
        cpu_utilization = min(1.0, total_busy / allocated_cores)
        if include_power:
            power_w = self.node_power(
                total_busy, allocated_cores, knobs.cpu_freq_ghz
            )
            energy_j = power_w * dt_s
        else:
            power_w = 0.0
            energy_j = 0.0

        # 7. Diagnostics.
        total_misses_pp = float(np.sum(misses_pp))
        miss_rate = achieved * total_misses_pp
        dropped = max(0.0, offered_pps - achieved)
        # Latency: batch fill time + per-NF processing + queueing headroom.
        proc_s = float(np.sum(cpps)) / freq_hz if freq_hz > 0 else float("inf")
        fill_s = knobs.batch_size / max(achieved, 1.0)
        utilization_peak = (
            min(1.0, achieved / chain_rate) if chain_rate > 0 else 1.0
        )
        queue_s = proc_s * utilization_peak / max(1e-6, 1.0 - min(utilization_peak, 0.999))
        latency_s = fill_s + proc_s + queue_s

        return TelemetrySample(
            dt_s=dt_s,
            offered_pps=offered_pps,
            achieved_pps=achieved,
            packet_bytes=packet_bytes,
            throughput_gbps=pps_to_gbps(achieved, packet_bytes),
            llc_miss_rate_per_s=miss_rate,
            cpu_utilization=cpu_utilization,
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=dropped,
            latency_s=latency_s,
            arrival_rate_pps=offered_pps,
            per_nf=per_nf,
        )

    def step_batch(
        self,
        chain: ServiceChain,
        knobs_grid,
        offered_grid,
        packet_bytes: float,
        dt_s: float = 1.0,
        *,
        llc_bytes=None,
        contention=None,
        include_power: bool = True,
    ) -> BatchTelemetry:
        """Evaluate K knob settings x L offered loads in one call.

        Parameters
        ----------
        knobs_grid:
            Sequence of :class:`KnobSettings` or a ``(K, 5)`` array in
            :meth:`KnobSettings.as_array` layout.
        offered_grid:
            Offered packet rates, shape ``(L,)`` (scalars are promoted).
        llc_bytes:
            Requested LLC capacity override — scalar or per-knob ``(K,)``
            array; default derives it from each setting's
            ``llc_fraction``.
        contention:
            Cross-chain miss multiplier — scalar or per-knob ``(K,)``.

        Returns a :class:`BatchTelemetry` whose grid arrays have shape
        ``(K, L)``.  Every point is numerically equivalent to the
        corresponding :meth:`step` call.
        """
        if packet_bytes <= 0 or dt_s <= 0:
            raise ValueError("packet size/dt must be positive")
        offered = np.atleast_1d(np.asarray(offered_grid, dtype=np.float64))
        if offered.ndim != 1:
            raise ValueError("offered grid must be one-dimensional")
        if np.any(offered < 0):
            raise ValueError("offered rates must be non-negative")
        share, freq, llc_frac, dma_bytes, batch = _knob_arrays(knobs_grid)

        llc = self.server.llc
        if llc_bytes is None:
            llc_req = llc_frac * llc.way_bytes * llc.allocatable_ways
        else:
            llc_req = np.broadcast_to(
                np.asarray(llc_bytes, dtype=np.float64), share.shape
            )
        eff_llc, cat_contention = self.effective_llc_bytes(llc_req)
        if contention is None:
            eff_contention = np.broadcast_to(
                np.asarray(cat_contention, dtype=np.float64), share.shape
            )
        else:
            eff_contention = np.maximum(
                np.broadcast_to(np.asarray(contention, dtype=np.float64), share.shape),
                cat_contention,
            )

        profile = chain_profile(chain, packet_bytes, llc.line_bytes)
        n = len(profile)
        # Knob columns as (K, 1) so the NF axis broadcasts last.
        cpps, misses_pp = self._chain_costs(
            profile,
            batch[:, None],
            dma_bytes[:, None],
            np.asarray(eff_llc, dtype=np.float64)[:, None],
            eff_contention[:, None],
        )

        # 1. NIC admission (line rate).
        nic_cap = self.server.nic.max_pps(packet_bytes)
        admitted = np.minimum(offered, nic_cap)

        # 2. Rx-ring delivery (DMA buffer absorption).
        delivery = self.dma_model.delivery_ratio(
            dma_bytes[:, None], packet_bytes, admitted[None, :]
        )
        delivered = admitted[None, :] * delivery  # (K, L)

        # 3. Pipeline bottleneck.
        freq_hz = freq * 1e9
        capacity = share * freq_hz  # (K,)
        rates = capacity[:, None] / cpps  # (K, n)
        chain_rate = rates.min(axis=1)  # (K,)
        achieved = np.minimum(delivered, chain_rate[:, None])

        # 4. Receive livelock.
        rx = self.params.rx_drop_cycles
        cpp0 = cpps[:, 0]
        livelock = (delivered * cpp0[:, None] > capacity[:, None]) & (cpp0 > rx)[:, None]
        denom = np.where(cpp0 > rx, cpp0 - rx, 1.0)
        nf0_rate = np.maximum(
            0.0, (capacity[:, None] - delivered * rx) / denom[:, None]
        )
        achieved = np.where(livelock, np.minimum(achieved, nf0_rate), achieved)

        # 5. Per-NF utilization.
        work = achieved[:, :, None] * cpps[:, None, :]  # (K, L, n)
        work[:, :, 0] = work[:, :, 0] + np.maximum(0.0, delivered - achieved) * rx
        cap3 = capacity[:, None, None]
        util = np.where(
            cap3 > 0, np.minimum(1.0, work / np.where(cap3 > 0, cap3, 1.0)), 0.0
        )
        if self.polling == PollingMode.POLL:
            util = np.broadcast_to(
                np.where(share > 0, 1.0, 0.0)[:, None, None], work.shape
            ).copy()
        else:
            util = np.minimum(1.0, util + self.params.adaptive_poll_overhead)
        busy_cores = np.sum(share[:, None, None] * util, axis=2)  # (K, L)

        # Infrastructure (Rx/Tx) threads.
        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        infra_busy = self.params.infra_cores * infra_util
        allocated_cores = share * n + self.params.infra_cores  # (K,)
        total_busy = busy_cores + infra_busy

        # 6. Node power (one vectorized Fan-model evaluation).
        cpu_utilization = np.minimum(1.0, total_busy / allocated_cores[:, None])
        if include_power:
            power_w = self.node_power(
                total_busy,
                np.broadcast_to(allocated_cores[:, None], total_busy.shape),
                np.broadcast_to(freq[:, None], total_busy.shape),
            )
            energy_j = power_w * dt_s
        else:
            power_w = np.zeros_like(total_busy)
            energy_j = np.zeros_like(total_busy)

        # 7. Diagnostics.
        total_misses_pp = np.sum(misses_pp, axis=1)  # (K,)
        miss_rate = achieved * total_misses_pp[:, None]
        dropped = np.maximum(0.0, offered[None, :] - achieved)
        proc_s = np.where(freq_hz > 0, np.sum(cpps, axis=1) / np.where(freq_hz > 0, freq_hz, 1.0), np.inf)
        fill_s = batch[:, None] / np.maximum(achieved, 1.0)
        utilization_peak = np.where(
            chain_rate[:, None] > 0,
            np.minimum(1.0, achieved / np.where(chain_rate[:, None] > 0, chain_rate[:, None], 1.0)),
            1.0,
        )
        queue_s = proc_s[:, None] * utilization_peak / np.maximum(
            1e-6, 1.0 - np.minimum(utilization_peak, 0.999)
        )
        latency_s = fill_s + proc_s[:, None] + queue_s

        return BatchTelemetry(
            dt_s=dt_s,
            packet_bytes=packet_bytes,
            offered_pps=offered,
            achieved_pps=achieved,
            throughput_gbps=pps_to_gbps(achieved, packet_bytes),
            llc_miss_rate_per_s=miss_rate,
            cpu_utilization=cpu_utilization,
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=dropped,
            latency_s=latency_s,
            chain_rate_pps=chain_rate,
            cycles_per_packet=cpps,
            misses_per_packet=misses_pp,
            service_rate_pps=rates,
            nf_utilization=util,
            nf_names=profile.names,
        )

    def fixed_volume_energy(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        offered_pps: float,
        packet_bytes: float,
        volume_packets: float,
        **step_kwargs,
    ) -> tuple[float, TelemetrySample]:
        """Energy to process a fixed packet volume (Fig. 3's metric).

        Runs one representative interval to get rate and power, then
        charges ``power * volume / rate``.  Returns (energy_j, sample).
        """
        if volume_packets <= 0:
            raise ValueError("volume must be positive")
        sample = self.step(chain, knobs, offered_pps, packet_bytes, 1.0, **step_kwargs)
        if sample.achieved_pps <= 0:
            return float("inf"), sample
        duration = volume_packets / sample.achieved_pps
        return sample.power_w * duration, sample
