"""The platform physics: knobs + offered load -> throughput, misses, power.

This module is the simulator's substitute for the paper's physical
testbed.  Given a service chain, its knob settings, and the offered
traffic for one control interval, :class:`PacketEngine` computes

* the chain's achievable packet rate (pipeline bottleneck analysis over
  the NFs, Rx-ring delivery, receive livelock under overload, NIC line
  rate),
* the LLC miss rate,
* per-NF and aggregate CPU utilization,
* node power (Fan et al. model) and interval energy.

Per-packet cost of NF *i* (cycles)::

    cpp_i = compute(nf, pkt)                        # base + per_byte * pkt
          + ring_call_cycles / batch                # batching amortization
          + mbuf_cycles / sqrt(batch)               # bulk mbuf alloc/free
          + state_lines * p_miss * pen_eff          # table walks
          + touched_lines * mem_factor *
              (p_hit * hit_eff + p_miss' * pen_eff) # payload access
          + inter_nf_handoff  (i > 0)

where ``pen_eff = miss_penalty * (1 - prefetch_efficiency(batch))`` —
batching lets the prefetchers hide DRAM latency — and the payload
hit probability comes from DDIO for the first NF (DMA ring vs. DDIO
capacity) and from LLC residency of the in-flight batch for later NFs.
State-walk and residency miss probabilities derive from the chain's
working set vs. its CAT allocation (``capacity_miss_ratio``).

Service rate of NF *i* = ``cpu_share * f / cpp_i``; the chain rate is the
pipeline minimum; achieved rate additionally respects the Rx-ring
delivery ratio (DMA too small => ring overflow drops), receive livelock
(dropping packets still costs rx cycles), and NIC line rate.  These are
the mechanisms §3 measures in isolation, so the micro-benchmark figures
(Figs. 1-4) fall out of the same code path the RL environment uses.

CPU utilization depends on the polling mode: the Baseline's DPDK
poll-mode driver "uses complete cycles of dedicated cores" (util = 100%
on allocated cores); GreenNFV's "mix of callback and polling" lets
utilization track actual work with a small polling overhead.

The implementation is array-native: the per-NF cost model is evaluated
over whole chains at once from an immutable, cached :class:`ChainProfile`
(the NF catalog constants of a chain laid out as NumPy arrays), and
:meth:`PacketEngine.step_batch` evaluates a K-knob x L-load grid in one
vectorized call — the fast path the figure scans, knob searches and
scenario sweeps run on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.hw.cache import (
    capacity_miss_ratio,
    ddio_hit_ratio,
    prefetch_efficiency,
)
from repro.hw.dma import DmaBufferModel
from repro.hw.power import ServerPowerModel
from repro.hw.server import ServerSpec
from repro.nfv.chain import ServiceChain
from repro.nfv.knobs import KnobSettings
from repro.utils.units import pps_to_gbps


class PollingMode(enum.Enum):
    """How NF cores wait for packets."""

    #: DPDK poll-mode driver: allocated cores busy-spin at 100%.
    POLL = "poll"
    #: GreenNFV's mix of callback and polling: cores sleep when idle,
    #: utilization tracks work plus a small polling overhead.
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class EngineParams:
    """Calibration constants of the physics model.

    These place the simulator's response surface in the same regime as
    the paper's testbed measurements.  They are pinned by
    ``tests/test_calibration.py``, which asserts the §3 micro-benchmark
    shapes and the §5 ordering (who wins, by roughly what factor); none
    of the orderings depend on their exact values.
    """

    #: Cycles per ring dequeue/enqueue call, amortized over a batch.
    ring_call_cycles: float = 420.0
    #: mbuf alloc/free cost; bulk operations amortize as 1/sqrt(batch).
    mbuf_cycles: float = 80.0
    #: Cycles to hand a packet between NFs through a shared ring.
    inter_nf_handoff_cycles: float = 60.0
    #: Cycles the first NF spends on a packet that is received and then
    #: dropped under overload (receive livelock).
    rx_drop_cycles: float = 120.0
    #: Latency-bound fraction of payload line accesses (the rest pipeline
    #: behind them).
    mem_factor: float = 0.55
    #: Cold misses per batch (descriptor ring, NF code/stack warmup).
    cold_lines_per_batch: float = 48.0
    #: Fraction of polling-loop overhead under ADAPTIVE mode.
    adaptive_poll_overhead: float = 0.04
    #: Infrastructure cores (ONVM Rx/Tx threads) always running.
    infra_cores: float = 2.0
    #: Utilization of the infra cores under POLL / ADAPTIVE modes.
    infra_util_poll: float = 1.0
    infra_util_adaptive: float = 0.35
    #: Locality exponent of the capacity miss model.
    cache_locality: float = 2.0
    #: Extra LLC demand (bytes) from co-tenants when CAT is disabled,
    #: in units of the allocatable region (the Baseline shares the cache
    #: with everything else on the socket).
    no_cat_background_share: float = 3.0
    #: Miss-ratio multiplier from uncontrolled sharing when CAT is off.
    no_cat_contention: float = 1.35


@dataclass(frozen=True)
class ChainProfile:
    """A chain's per-NF cost constants laid out as immutable arrays.

    The arrays depend only on the chain and the packet size, so profiles
    are cached per ``(chain, packet_bytes, line_bytes)`` and shared by
    every engine evaluation — the scalar :meth:`PacketEngine.step` and
    the grid :meth:`PacketEngine.step_batch` both start from here.
    """

    names: tuple[str, ...]
    #: Pure compute cycles per packet per NF (base + per_byte * pkt).
    compute_cycles: np.ndarray
    #: State-table cache lines dereferenced per packet per NF.
    state_lines: np.ndarray
    #: Frame cache lines each NF reads per packet.
    touched_lines: np.ndarray
    total_state_bytes: float
    packet_bytes: float

    def __len__(self) -> int:
        return len(self.names)


@lru_cache(maxsize=1024)
def chain_profile(
    chain: ServiceChain, packet_bytes: float, line_bytes: float = 64.0
) -> ChainProfile:
    """Build (or fetch the cached) :class:`ChainProfile` for a chain.

    ``ServiceChain`` is a frozen value type, so profiles are memoized on
    the (chain, packet size, cache-line size) triple.
    """
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    compute = np.asarray(
        [nf.cycles_for_packet(packet_bytes) for nf in chain.nfs], dtype=np.float64
    )
    state_lines = np.asarray(
        [nf.state_lines_touched for nf in chain.nfs], dtype=np.float64
    )
    touched = np.asarray(
        [nf.touched_lines(packet_bytes, line_bytes) for nf in chain.nfs],
        dtype=np.float64,
    )
    for arr in (compute, state_lines, touched):
        arr.flags.writeable = False
    return ChainProfile(
        names=tuple(nf.name for nf in chain.nfs),
        compute_cycles=compute,
        state_lines=state_lines,
        touched_lines=touched,
        total_state_bytes=chain.total_state_bytes,
        packet_bytes=float(packet_bytes),
    )


@dataclass(frozen=True)
class ChainStack:
    """Several :class:`ChainProfile` rows stacked for one kernel pass.

    Rows may mix chains and packet sizes — a multi-chain node (one row
    per hosted chain), a packet-size sweep (one row per frame size of
    the same chain), or both.  Per-NF arrays have shape ``(R, n_max)``;
    rows whose chain has fewer than ``n_max`` NFs are zero-padded, with
    ``valid`` masking the live lanes (``None`` when every row has the
    same NF count).  ``total_state_bytes`` and ``packet_bytes`` are
    ``(R, 1)`` columns so they broadcast against knob columns inside
    :meth:`PacketEngine._chain_costs`.
    """

    profiles: tuple[ChainProfile, ...]
    compute_cycles: np.ndarray  # (R, n_max)
    state_lines: np.ndarray  # (R, n_max)
    touched_lines: np.ndarray  # (R, n_max)
    total_state_bytes: np.ndarray  # (R, 1)
    packet_bytes: np.ndarray  # (R, 1)
    n_nfs: np.ndarray  # (R,) per-row NF counts (float64 for broadcasting)
    valid: np.ndarray | None  # (R, n_max) bool lane mask, None if homogeneous

    def __len__(self) -> int:
        """Padded NF-axis length (matches ``len(profile)`` semantics)."""
        return self.compute_cycles.shape[1]

    @property
    def rows(self) -> int:
        """Number of stacked profiles."""
        return self.compute_cycles.shape[0]


def stack_profiles(profiles) -> ChainStack:
    """Stack :class:`ChainProfile` rows into one padded :class:`ChainStack`."""
    profiles = tuple(profiles)
    if not profiles:
        raise ValueError("need at least one profile to stack")
    n_nfs = [len(p) for p in profiles]
    n_max = max(n_nfs)
    rows = len(profiles)
    compute = np.zeros((rows, n_max), dtype=np.float64)
    state = np.zeros((rows, n_max), dtype=np.float64)
    touched = np.zeros((rows, n_max), dtype=np.float64)
    for r, p in enumerate(profiles):
        compute[r, : n_nfs[r]] = p.compute_cycles
        state[r, : n_nfs[r]] = p.state_lines
        touched[r, : n_nfs[r]] = p.touched_lines
    if min(n_nfs) == n_max:
        valid = None
    else:
        valid = np.arange(n_max)[None, :] < np.asarray(n_nfs)[:, None]
        valid.flags.writeable = False
    total_state = np.asarray(
        [p.total_state_bytes for p in profiles], dtype=np.float64
    )[:, None]
    pkt = np.asarray([p.packet_bytes for p in profiles], dtype=np.float64)[:, None]
    for arr in (compute, state, touched, total_state, pkt):
        arr.flags.writeable = False
    return ChainStack(
        profiles=profiles,
        compute_cycles=compute,
        state_lines=state,
        touched_lines=touched,
        total_state_bytes=total_state,
        packet_bytes=pkt,
        n_nfs=np.asarray(n_nfs, dtype=np.float64),
        valid=valid,
    )


@lru_cache(maxsize=512)
def chain_stack(chains, packet_bytes, line_bytes: float = 64.0) -> ChainStack:
    """Build (or fetch the cached) stack for chains at their packet sizes.

    ``chains`` and ``packet_bytes`` are same-length tuples — one row per
    (chain, frame size) pair.  Like :func:`chain_profile`, stacks are
    memoized: a node stepping the same resident chains every interval
    reuses one stack for the whole run.
    """
    if len(chains) != len(packet_bytes):
        raise ValueError("need one packet size per chain")
    return stack_profiles(
        chain_profile(c, p, line_bytes) for c, p in zip(chains, packet_bytes)
    )


@dataclass
class NFTelemetry:
    """Per-NF interval measurements."""

    name: str
    cycles_per_packet: float
    service_rate_pps: float
    utilization: float
    misses_per_packet: float


class _LazyPerNF:
    """Per-NF telemetry rows materialized on first access.

    The cluster kernel prices dozens of chains per interval; most
    consumers (state encoders, SLA folds, steering rules) read only the
    chain-level scalars, so building one :class:`NFTelemetry` per NF per
    chain per interval is wasted work on the hot path.  This sequence
    holds the row's plain-float columns and builds the objects the first
    time anything iterates or indexes it; :attr:`max_utilization` (the
    SDN steering signal) is available without materializing.  Compares
    equal to the eager ``list[NFTelemetry]`` it stands in for.
    """

    __slots__ = ("_names", "_cpp", "_rate", "_util", "_mpp", "_items")

    def __init__(self, names, cpp, rate, util, mpp):
        self._names = names
        self._cpp = cpp
        self._rate = rate
        self._util = util
        self._mpp = mpp
        self._items: list[NFTelemetry] | None = None

    def _materialize(self) -> list[NFTelemetry]:
        if self._items is None:
            self._items = [
                NFTelemetry(
                    name=name,
                    cycles_per_packet=self._cpp[i],
                    service_rate_pps=self._rate[i],
                    utilization=self._util[i],
                    misses_per_packet=self._mpp[i],
                )
                for i, name in enumerate(self._names)
            ]
        return self._items

    @property
    def max_utilization(self) -> float:
        """Bottleneck-NF utilization without materializing the rows."""
        return max(self._util) if self._names else 0.0

    def __len__(self) -> int:
        return len(self._names)

    def __bool__(self) -> bool:
        return bool(self._names)

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other):
        if isinstance(other, _LazyPerNF):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:
        return repr(self._materialize())


def bottleneck_utilization(sample: "TelemetrySample") -> float:
    """The binding stage's utilization — the SDN steering signal.

    A chain drops packets as soon as one NF saturates, so steering reads
    the max over the chain's NFs, not the mean over provisioned cores.
    Uses the lazy fast path when the sample came out of a kernel pass;
    falls back to ``cpu_utilization`` when per-NF rows are absent.
    """
    per_nf = sample.per_nf
    if isinstance(per_nf, _LazyPerNF):
        if len(per_nf):
            return per_nf.max_utilization
        return sample.cpu_utilization
    if per_nf:
        return max(t.utilization for t in per_nf)
    return sample.cpu_utilization


@dataclass
class TelemetrySample:
    """Everything the controller reads back after one interval.

    This is the simulator's equivalent of the state-collection step in
    Algorithm 3: throughput ``T``, energy ``E``, CPU utilization ``xi``
    and packet arrival rate ``Omega``, plus diagnostics.
    """

    dt_s: float
    offered_pps: float
    achieved_pps: float
    packet_bytes: float
    throughput_gbps: float
    llc_miss_rate_per_s: float
    cpu_utilization: float  # fraction of provisioned cores busy, 0..1
    cpu_cores_busy: float  # absolute busy-core count ("CPU usage %" / 100)
    power_w: float
    energy_j: float
    dropped_pps: float
    latency_s: float
    arrival_rate_pps: float
    per_nf: list[NFTelemetry] = field(default_factory=list)

    @property
    def energy_per_mpacket(self) -> float:
        """Energy per million processed packets (Fig. 1(c)/4(b) metric)."""
        packets = self.achieved_pps * self.dt_s
        if packets <= 0:
            return float("inf")
        return self.energy_j / (packets / 1e6)

    @property
    def energy_efficiency(self) -> float:
        """Throughput per unit energy, lambda = T / E (Eq. 3), Gbps/kJ."""
        if self.energy_j <= 0:
            return 0.0
        return self.throughput_gbps / (self.energy_j / 1e3)


def efficiency_grid(throughput_gbps, energy_j) -> np.ndarray:
    """Eq. 3's lambda = T / E in Gbps per kJ, elementwise over a grid.

    Zero-energy points score 0 (not inf/nan) — the one definition every
    grid telemetry and grid search shares, so scorers cannot diverge on
    the convention.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            energy_j > 0, throughput_gbps / (np.asarray(energy_j) / 1e3), 0.0
        )


@dataclass
class BatchTelemetry:
    """Telemetry of a K-knob x L-load grid evaluated in one call.

    Grid quantities have shape ``(K, L)``; per-NF quantities depend only
    on the knobs and have shape ``(K, n_nfs)``.  Row ``k`` corresponds to
    ``knobs[k]``; column ``l`` to ``offered_pps[l]``.

    When the grid was evaluated over a packet-size axis of P frame
    sizes, ``packet_bytes`` is the ``(P,)`` axis, grid quantities have
    shape ``(K, L, P)``, and per-knob quantities gain the packet axis
    too: ``chain_rate_pps`` is ``(K, P)`` and per-NF quantities are
    ``(K, P, n_nfs)`` (``nf_utilization``: ``(K, L, P, n_nfs)``).
    """

    dt_s: float
    packet_bytes: float | np.ndarray
    offered_pps: np.ndarray  # (L,)
    achieved_pps: np.ndarray  # (K, L)
    throughput_gbps: np.ndarray  # (K, L)
    llc_miss_rate_per_s: np.ndarray  # (K, L)
    cpu_utilization: np.ndarray  # (K, L)
    cpu_cores_busy: np.ndarray  # (K, L)
    power_w: np.ndarray  # (K, L)
    energy_j: np.ndarray  # (K, L)
    dropped_pps: np.ndarray  # (K, L)
    latency_s: np.ndarray  # (K, L)
    chain_rate_pps: np.ndarray  # (K,)
    cycles_per_packet: np.ndarray  # (K, n)
    misses_per_packet: np.ndarray  # (K, n)
    service_rate_pps: np.ndarray  # (K, n)
    nf_utilization: np.ndarray  # (K, L, n)
    nf_names: tuple[str, ...] = ()

    @property
    def shape(self) -> tuple[int, ...]:
        """(K knob settings, L offered loads[, P packet sizes])."""
        return self.achieved_pps.shape

    @property
    def energy_per_mpacket(self) -> np.ndarray:
        """Energy per million processed packets across the grid."""
        packets = self.achieved_pps * self.dt_s
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(
                packets > 0, self.energy_j / (packets / 1e6), np.inf
            )
        return out

    @property
    def energy_efficiency(self) -> np.ndarray:
        """Gbps per kJ across the grid (Eq. 3's lambda)."""
        return efficiency_grid(self.throughput_gbps, self.energy_j)

    def sample(self, k: int, l: int, p: int | None = None) -> TelemetrySample:
        """Materialize one grid point as a full :class:`TelemetrySample`.

        For telemetry carrying a packet-size axis, ``p`` selects the
        frame size (required then, rejected otherwise).
        """
        if self.achieved_pps.ndim == 3:
            if p is None:
                raise ValueError(
                    "this telemetry has a packet-size axis; pass sample(k, l, p)"
                )
            grid = (k, l, p)
            knob = (k, p)
            pkt = float(self.packet_bytes[p])
        else:
            if p is not None:
                raise ValueError("no packet-size axis on this telemetry")
            grid = (k, l)
            knob = (k,)
            pkt = self.packet_bytes
        per_nf = [
            NFTelemetry(
                name=name,
                cycles_per_packet=float(self.cycles_per_packet[knob + (i,)]),
                service_rate_pps=float(self.service_rate_pps[knob + (i,)]),
                utilization=float(self.nf_utilization[grid + (i,)]),
                misses_per_packet=float(self.misses_per_packet[knob + (i,)]),
            )
            for i, name in enumerate(self.nf_names)
        ]
        return TelemetrySample(
            dt_s=self.dt_s,
            offered_pps=float(self.offered_pps[l]),
            achieved_pps=float(self.achieved_pps[grid]),
            packet_bytes=pkt,
            throughput_gbps=float(self.throughput_gbps[grid]),
            llc_miss_rate_per_s=float(self.llc_miss_rate_per_s[grid]),
            cpu_utilization=float(self.cpu_utilization[grid]),
            cpu_cores_busy=float(self.cpu_cores_busy[grid]),
            power_w=float(self.power_w[grid]),
            energy_j=float(self.energy_j[grid]),
            dropped_pps=float(self.dropped_pps[grid]),
            latency_s=float(self.latency_s[grid]),
            arrival_rate_pps=float(self.offered_pps[l]),
            per_nf=per_nf,
        )


@dataclass
class MultiChainTelemetry:
    """Telemetry of R chains stepped diagonally in one kernel call.

    Unlike :class:`BatchTelemetry` (one chain, a knob x load grid), each
    row here is a *different* chain evaluated at its own knob setting,
    offered load and packet size — the multi-chain node's per-interval
    workload.  Per-chain quantities have shape ``(R,)``; per-NF
    quantities ``(R, n_max)`` with padded lanes zeroed.  Row ``r``'s
    values match the scalar :meth:`PacketEngine.step` call for that
    chain bit-for-bit (to <= 1 ulp).
    """

    dt_s: float
    stack: ChainStack
    offered_pps: np.ndarray  # (R,)
    packet_bytes: np.ndarray  # (R,)
    achieved_pps: np.ndarray  # (R,)
    throughput_gbps: np.ndarray  # (R,)
    llc_miss_rate_per_s: np.ndarray  # (R,)
    cpu_utilization: np.ndarray  # (R,)
    cpu_cores_busy: np.ndarray  # (R,)
    power_w: np.ndarray  # (R,)
    energy_j: np.ndarray  # (R,)
    dropped_pps: np.ndarray  # (R,)
    latency_s: np.ndarray  # (R,)
    chain_rate_pps: np.ndarray  # (R,)
    cycles_per_packet: np.ndarray  # (R, n_max)
    misses_per_packet: np.ndarray  # (R, n_max)
    service_rate_pps: np.ndarray  # (R, n_max)
    nf_utilization: np.ndarray  # (R, n_max)

    def __len__(self) -> int:
        return self.achieved_pps.shape[0]

    @property
    def energy_efficiency(self) -> np.ndarray:
        """Gbps per kJ per row (Eq. 3's lambda, zero at zero energy)."""
        return efficiency_grid(self.throughput_gbps, self.energy_j)

    def sample(self, r: int) -> TelemetrySample:
        """Materialize one chain's row as a full :class:`TelemetrySample`."""
        profile = self.stack.profiles[r]
        cpp = self.cycles_per_packet[r]
        rate = self.service_rate_pps[r]
        util = self.nf_utilization[r]
        mpp = self.misses_per_packet[r]
        per_nf = [
            NFTelemetry(
                name=name,
                cycles_per_packet=float(cpp[i]),
                service_rate_pps=float(rate[i]),
                utilization=float(util[i]),
                misses_per_packet=float(mpp[i]),
            )
            for i, name in enumerate(profile.names)
        ]
        offered = float(self.offered_pps[r])
        return TelemetrySample(
            dt_s=self.dt_s,
            offered_pps=offered,
            achieved_pps=float(self.achieved_pps[r]),
            packet_bytes=float(self.packet_bytes[r]),
            throughput_gbps=float(self.throughput_gbps[r]),
            llc_miss_rate_per_s=float(self.llc_miss_rate_per_s[r]),
            cpu_utilization=float(self.cpu_utilization[r]),
            cpu_cores_busy=float(self.cpu_cores_busy[r]),
            power_w=float(self.power_w[r]),
            energy_j=float(self.energy_j[r]),
            dropped_pps=float(self.dropped_pps[r]),
            latency_s=float(self.latency_s[r]),
            arrival_rate_pps=offered,
            per_nf=per_nf,
        )

    def samples(self, *, lazy_per_nf: bool = False) -> list[TelemetrySample]:
        """All rows as :class:`TelemetrySample` objects.

        Equivalent to ``[self.sample(r) for r in range(len(self))]`` but
        converts each array to Python floats in one pass — the cheap
        materialization path the node uses every interval.  With
        ``lazy_per_nf`` the per-NF rows come back as :class:`_LazyPerNF`
        sequences (equal to, and materializing into, the eager lists on
        first access) — the cluster kernel's hot path, where most
        consumers never read per-NF telemetry.
        """
        offered = self.offered_pps.tolist()
        achieved = self.achieved_pps.tolist()
        pkt = self.packet_bytes.tolist()
        thr = self.throughput_gbps.tolist()
        miss_rate = self.llc_miss_rate_per_s.tolist()
        cpu_util = self.cpu_utilization.tolist()
        busy = self.cpu_cores_busy.tolist()
        power = self.power_w.tolist()
        energy = self.energy_j.tolist()
        dropped = self.dropped_pps.tolist()
        latency = self.latency_s.tolist()
        cpp = self.cycles_per_packet.tolist()
        rate = self.service_rate_pps.tolist()
        util = self.nf_utilization.tolist()
        mpp = self.misses_per_packet.tolist()
        out = []
        for r, profile in enumerate(self.stack.profiles):
            cpp_r, rate_r, util_r, mpp_r = cpp[r], rate[r], util[r], mpp[r]
            if lazy_per_nf:
                per_nf = _LazyPerNF(profile.names, cpp_r, rate_r, util_r, mpp_r)
            else:
                per_nf = [
                    NFTelemetry(
                        name=name,
                        cycles_per_packet=cpp_r[i],
                        service_rate_pps=rate_r[i],
                        utilization=util_r[i],
                        misses_per_packet=mpp_r[i],
                    )
                    for i, name in enumerate(profile.names)
                ]
            out.append(
                TelemetrySample(
                    dt_s=self.dt_s,
                    offered_pps=offered[r],
                    achieved_pps=achieved[r],
                    packet_bytes=pkt[r],
                    throughput_gbps=thr[r],
                    llc_miss_rate_per_s=miss_rate[r],
                    cpu_utilization=cpu_util[r],
                    cpu_cores_busy=busy[r],
                    power_w=power[r],
                    energy_j=energy[r],
                    dropped_pps=dropped[r],
                    latency_s=latency[r],
                    arrival_rate_pps=offered[r],
                    per_nf=per_nf,
                )
            )
        return out

    def aggregate(self) -> TelemetrySample:
        """Fold the rows into one Eq. 1/2-style node aggregate.

        Delegates to :func:`aggregate_samples` — the single
        authoritative fold — so kernel-backed and sample-based callers
        can never diverge.
        """
        return aggregate_samples(self.samples())


def aggregate_samples(samples) -> TelemetrySample:
    """Fold per-chain telemetry into one Eq. 1/2-style node aggregate.

    Throughput/energy/misses/drops sum over chains (``psi_T = sum_i
    T_{f_i}``, ``psi_E = sum_i E_{f_i}``); utilization and latency take
    the worst chain; packet size is the achieved-rate-weighted mean.
    This is the only implementation of the fold — the multi-chain env
    and :meth:`MultiChainTelemetry.aggregate` both call it, so the
    result does not depend on which stepping path produced the samples.
    """
    items = list(samples)
    if not items:
        raise ValueError("need at least one sample to aggregate")
    total_pps = sum(s.achieved_pps for s in items)
    total_offered = sum(s.offered_pps for s in items)
    mean_pkt = (
        sum(s.packet_bytes * s.achieved_pps for s in items) / total_pps
        if total_pps > 0
        else items[0].packet_bytes
    )
    return TelemetrySample(
        dt_s=items[0].dt_s,
        offered_pps=total_offered,
        achieved_pps=total_pps,
        packet_bytes=mean_pkt,
        throughput_gbps=sum(s.throughput_gbps for s in items),
        llc_miss_rate_per_s=sum(s.llc_miss_rate_per_s for s in items),
        cpu_utilization=max(s.cpu_utilization for s in items),
        cpu_cores_busy=sum(s.cpu_cores_busy for s in items),
        power_w=sum(s.power_w for s in items),
        energy_j=sum(s.energy_j for s in items),
        dropped_pps=sum(s.dropped_pps for s in items),
        latency_s=max(s.latency_s for s in items),
        arrival_rate_pps=total_offered,
    )


@dataclass
class ChainKernelPlan:
    """A compiled multi-chain stepping kernel for fixed knob settings.

    Built by :meth:`PacketEngine.compile_chains`; holds every
    load-independent quantity (per-NF costs, service rates, livelock
    constants, NIC/ring caps, allocated cores) so :meth:`step` only has
    to price the interval's offered loads.  Each step's row ``r``
    matches the scalar :meth:`PacketEngine.step` call for that chain to
    <= 1 ulp.
    """

    engine: "PacketEngine"
    stack: ChainStack
    share: np.ndarray  # (R,)
    freq: np.ndarray  # (R,) GHz
    batch: np.ndarray  # (R,)
    capacity: np.ndarray  # (R,) cycles/s granted per NF
    cpps: np.ndarray  # (R, n) cycles/packet (padded lanes zeroed)
    misses_pp: np.ndarray  # (R, n)
    rates: np.ndarray  # (R, n) per-NF service rates
    chain_rate: np.ndarray  # (R,) pipeline bottleneck rate
    livelock_able: np.ndarray  # (R,) bool: NF0 cpp exceeds the rx-drop cost
    livelock_denom: np.ndarray  # (R,)
    nic_cap: np.ndarray  # (R,) line-rate pps at each chain's frame size
    absorb_pps: np.ndarray  # (R,) rx-ring burst absorption cap
    proc_s: np.ndarray  # (R,) pipeline walk time
    total_misses_pp: np.ndarray  # (R,)
    allocated_cores: np.ndarray  # (R,)
    infra_busy: float
    util_poll: np.ndarray | None  # (R, n) fixed utilization under POLL
    busy_poll: np.ndarray | None  # (R,)

    @property
    def rows(self) -> int:
        """Number of chains the plan steps."""
        return self.share.shape[0]

    def step(
        self,
        offered_grid,
        dt_s: float = 1.0,
        *,
        include_power: bool = True,
    ) -> MultiChainTelemetry:
        """Price one control interval's offered loads through the plan."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        offered = np.atleast_1d(np.asarray(offered_grid, dtype=np.float64))
        if offered.shape != self.share.shape:
            raise ValueError("need one offered rate per stacked chain")
        if np.any(offered < 0):
            raise ValueError("offered rates must be non-negative")
        rx = self.engine.params.rx_drop_cycles
        cpps = self.cpps
        capacity = self.capacity

        # 1. NIC admission (line rate, per chain's frame size).
        admitted = np.minimum(offered, self.nic_cap)

        # 2. Rx-ring delivery (DMA buffer absorption).
        delivery = np.minimum(
            1.0, self.absorb_pps / np.where(admitted > 0, admitted, 1.0)
        )
        delivered = admitted * np.where(admitted == 0, 1.0, delivery)  # (R,)

        # 3. Pipeline bottleneck.
        achieved = np.minimum(delivered, self.chain_rate)

        # 4. Receive livelock.
        cpp0 = cpps[:, 0]
        livelock = (delivered * cpp0 > capacity) & self.livelock_able
        nf0_rate = np.maximum(
            0.0, (capacity - delivered * rx) / self.livelock_denom
        )
        achieved = np.where(livelock, np.minimum(achieved, nf0_rate), achieved)

        # 5. Per-NF utilization.
        if self.util_poll is not None:
            util = self.util_poll.copy()
            busy_cores = self.busy_poll
        else:
            work = achieved[:, None] * cpps  # (R, n)
            work[:, 0] = work[:, 0] + np.maximum(0.0, delivered - achieved) * rx
            cap2 = capacity[:, None]
            util = np.where(
                cap2 > 0, np.minimum(1.0, work / np.where(cap2 > 0, cap2, 1.0)), 0.0
            )
            util = np.minimum(
                1.0, util + self.engine.params.adaptive_poll_overhead
            )
            if self.stack.valid is not None:
                util = np.where(self.stack.valid, util, 0.0)
            busy_cores = np.sum(self.share[:, None] * util, axis=1)  # (R,)
        total_busy = busy_cores + self.infra_busy

        # 6. Node power (or zeros when the node prices power itself).
        cpu_utilization = np.minimum(1.0, total_busy / self.allocated_cores)
        if include_power:
            power_w = np.asarray(
                self.engine.node_power(total_busy, self.allocated_cores, self.freq)
            )
            energy_j = power_w * dt_s
        else:
            power_w = np.zeros_like(total_busy)
            energy_j = np.zeros_like(total_busy)

        # 7. Diagnostics.
        miss_rate = achieved * self.total_misses_pp
        dropped = np.maximum(0.0, offered - achieved)
        fill_s = self.batch / np.maximum(achieved, 1.0)
        cr = self.chain_rate
        utilization_peak = np.where(
            cr > 0, np.minimum(1.0, achieved / np.where(cr > 0, cr, 1.0)), 1.0
        )
        queue_s = self.proc_s * utilization_peak / np.maximum(
            1e-6, 1.0 - np.minimum(utilization_peak, 0.999)
        )
        latency_s = fill_s + self.proc_s + queue_s
        pkt = self.stack.packet_bytes[:, 0]

        return MultiChainTelemetry(
            dt_s=dt_s,
            stack=self.stack,
            offered_pps=offered,
            packet_bytes=pkt,
            achieved_pps=achieved,
            throughput_gbps=pps_to_gbps(achieved, pkt),
            llc_miss_rate_per_s=miss_rate,
            cpu_utilization=cpu_utilization,
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=dropped,
            latency_s=latency_s,
            chain_rate_pps=self.chain_rate,
            cycles_per_packet=cpps,
            misses_per_packet=self.misses_pp,
            service_rate_pps=self.rates,
            nf_utilization=util,
        )


def _knob_arrays(
    knobs_grid,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(cpu_share, freq_ghz, llc_fraction, dma_bytes, batch) columns.

    Accepts a sequence of :class:`KnobSettings` or an ``(K, 5)`` array in
    :meth:`KnobSettings.as_array` layout (dma in MB).
    """
    if isinstance(knobs_grid, np.ndarray):
        arr = np.asarray(knobs_grid, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 5:
            raise ValueError(f"knob grid array must have shape (K, 5), got {arr.shape}")
        share, freq, llc_frac = arr[:, 0], arr[:, 1], arr[:, 2]
        dma_bytes = arr[:, 3] * 1e6
        batch = np.round(arr[:, 4])
    else:
        knobs_list = list(knobs_grid)
        if not knobs_list:
            raise ValueError("knob grid must contain at least one setting")
        share = np.asarray([k.cpu_share for k in knobs_list], dtype=np.float64)
        freq = np.asarray([k.cpu_freq_ghz for k in knobs_list], dtype=np.float64)
        llc_frac = np.asarray([k.llc_fraction for k in knobs_list], dtype=np.float64)
        dma_bytes = np.asarray([k.dma_bytes for k in knobs_list], dtype=np.float64)
        batch = np.asarray([float(k.batch_size) for k in knobs_list], dtype=np.float64)
    if np.any(share <= 0) or np.any(freq <= 0) or np.any(batch < 1):
        raise ValueError("knob grid contains invalid cpu_share/freq/batch values")
    if np.any(llc_frac <= 0) or np.any(llc_frac > 1.0) or np.any(dma_bytes <= 0):
        raise ValueError("knob grid contains invalid llc_fraction/dma values")
    return share, freq, llc_frac, dma_bytes, batch


class PacketEngine:
    """Computes one chain's interval telemetry on one node's hardware."""

    def __init__(
        self,
        server: ServerSpec | None = None,
        params: EngineParams | None = None,
        polling: PollingMode = PollingMode.ADAPTIVE,
        *,
        cat_enabled: bool = True,
        park_idle_cores: bool = True,
    ):
        self.server = server or ServerSpec()
        self.params = params or EngineParams()
        self.polling = polling
        self.cat_enabled = cat_enabled
        self.park_idle_cores = park_idle_cores
        self.power_model = ServerPowerModel(self.server.power)
        self.dma_model = DmaBufferModel(self.server.dma, self.server.llc)

    # -- cache environment ---------------------------------------------------

    def _resolve_llc_contention(self, share, llc_frac, llc_bytes, contention):
        """(effective LLC bytes, effective contention) knob columns.

        The shared preamble of every grid kernel: derive the requested
        capacity from the ``llc_fraction`` column unless an explicit
        per-knob grant override is given, apply the CAT-disabled
        environment, and floor the cross-chain contention at the no-CAT
        multiplier.  All outputs broadcast to ``share``'s shape.
        """
        llc = self.server.llc
        if llc_bytes is None:
            llc_req = llc_frac * llc.way_bytes * llc.allocatable_ways
        else:
            llc_req = np.broadcast_to(
                np.asarray(llc_bytes, dtype=np.float64), share.shape
            )
        eff_llc, cat_contention = self.effective_llc_bytes(llc_req)
        if contention is None:
            eff_contention = np.broadcast_to(
                np.asarray(cat_contention, dtype=np.float64), share.shape
            )
        else:
            eff_contention = np.maximum(
                np.broadcast_to(np.asarray(contention, dtype=np.float64), share.shape),
                cat_contention,
            )
        return np.asarray(eff_llc, dtype=np.float64), eff_contention

    def effective_llc_bytes(self, requested_bytes):
        """(effective allocation, contention multiplier) for a chain.

        With CAT the chain keeps its CLOS grant exclusively.  Without CAT
        ("all other components set to default values" — the Baseline and
        EE-Pstate do not manage the cache) the chain competes with
        background tenants for the whole allocatable region, shrinking its
        effective share and adding conflict misses.  Accepts a scalar or
        an array of requested capacities.
        """
        if self.cat_enabled:
            if np.isscalar(requested_bytes):
                return requested_bytes, 1.0
            return np.asarray(requested_bytes, dtype=np.float64), 1.0
        llc = self.server.llc
        allocatable = llc.way_bytes * llc.allocatable_ways
        bg = self.params.no_cat_background_share * allocatable
        share = allocatable * requested_bytes / (requested_bytes + bg)
        return share, self.params.no_cat_contention

    # -- per-NF cost -------------------------------------------------------

    def _chain_costs(
        self,
        profile: ChainProfile,
        batch,
        dma_bytes,
        llc_bytes,
        contention,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cycles/packet, misses/packet) for every NF of a chain at once.

        ``batch``/``dma_bytes``/``llc_bytes``/``contention`` are scalars
        (shape ``()``) or knob-grid columns of shape ``(K, 1)``; the NF
        axis is last, so results have shape ``(n,)`` or ``(K, n)``.
        """
        llc = self.server.llc
        p = self.params
        scalar = np.ndim(batch) == 0

        pf = prefetch_efficiency(batch)
        pen_eff = llc.miss_penalty_cycles * (1.0 - pf)
        hit_eff = llc.hit_cycles * (1.0 - pf)

        # Working set the chain keeps live in its allocation.
        ws = profile.total_state_bytes + batch * profile.packet_bytes
        base_miss = capacity_miss_ratio(ws, llc_bytes, locality=p.cache_locality)

        # Payload access: DDIO landing for the first NF, LLC residency of
        # the in-flight batch for the rest.
        p_hit0 = self.dma_model.llc_spill_hit_ratio(dma_bytes, llc_bytes)
        if scalar:
            p_miss = min(1.0, base_miss * contention)
            p_hit0 = max(0.0, p_hit0 * (1.0 - p_miss * 0.5))
            p_hit = np.full(len(profile), 1.0 - p_miss)
            p_hit[0] = p_hit0
        else:
            p_miss = np.minimum(1.0, base_miss * contention)
            p_hit0 = np.maximum(0.0, p_hit0 * (1.0 - p_miss * 0.5))
            nf_shape = np.broadcast_shapes(np.shape(p_miss), (len(profile),))
            p_hit = np.broadcast_to(np.asarray(1.0 - p_miss), nf_shape).copy()
            p_hit[..., 0] = np.reshape(p_hit0, np.shape(p_miss))[..., 0]

        # State-table walks.
        state_cycles = profile.state_lines * p_miss * pen_eff
        misses = profile.state_lines * p_miss

        payload_cycles = profile.touched_lines * p.mem_factor * (
            p_hit * hit_eff + (1.0 - p_hit) * pen_eff
        )
        misses = misses + profile.touched_lines * (1.0 - p_hit)

        # Cold misses + per-call overheads amortized over the batch.
        cold_cycles = p.cold_lines_per_batch * pen_eff / batch
        misses = misses + p.cold_lines_per_batch / batch
        overhead = p.ring_call_cycles / batch + p.mbuf_cycles / np.sqrt(batch)

        cycles = profile.compute_cycles + overhead + state_cycles
        cycles = cycles + (payload_cycles + cold_cycles)
        cycles[..., 1:] = cycles[..., 1:] + p.inter_nf_handoff_cycles
        return cycles, misses

    def nf_cycles_per_packet(
        self,
        chain: ServiceChain,
        nf_index: int,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, float]:
        """(cycles/packet, misses/packet) for one NF under the knobs.

        ``llc_bytes`` is the chain's granted LLC capacity (NFs of a chain
        share one CLOS); ``contention`` multiplies miss probabilities for
        cross-chain interference.  The whole chain is evaluated at once
        (the per-NF terms share every knob-dependent factor), so callers
        that need all NFs should use :meth:`chain_service_rate` instead.
        """
        profile = chain_profile(chain, packet_bytes, self.server.llc.line_bytes)
        cycles, misses = self._chain_costs(
            profile, float(knobs.batch_size), knobs.dma_bytes, llc_bytes, contention
        )
        return float(cycles[nf_index]), float(misses[nf_index])

    # -- power ---------------------------------------------------------------

    def node_power(self, busy_cores, allocated_cores, freq_ghz):
        """Node power for a given busy/allocated core split.

        Utilization for the Fan model is the busy fraction of the whole
        socket.  Unallocated cores are parked in C6 (8% residual idle
        power) when ``park_idle_cores`` is set; otherwise they idle at
        full C0/C1 power, as on the untuned Baseline.  All three inputs
        broadcast, so grid evaluations price power in one call.
        """
        total = float(self.server.cpu.total_cores)
        if (
            np.isscalar(busy_cores)
            and np.isscalar(allocated_cores)
            and np.isscalar(freq_ghz)
        ):
            allocated = float(min(total, max(allocated_cores, 0.0)))
            busy = float(min(max(busy_cores, 0.0), total))
            u = busy / total
            parked = total - allocated
            if self.park_idle_cores:
                idle_fraction = (allocated + 0.08 * parked) / total
            else:
                idle_fraction = 1.0
            return float(
                self.power_model.power(u, freq_ghz, idle_fraction=idle_fraction)
            )
        allocated = np.minimum(total, np.maximum(allocated_cores, 0.0))
        busy = np.clip(busy_cores, 0.0, total)
        u = busy / total
        parked = total - allocated
        if self.park_idle_cores:
            idle_fraction = (allocated + 0.08 * parked) / total
        else:
            idle_fraction = np.ones_like(np.asarray(u, dtype=np.float64))
        out = self.power_model.power(u, freq_ghz, idle_fraction=idle_fraction)
        return np.asarray(out)

    # -- chain-level -------------------------------------------------------

    def chain_service_rate(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, list[float], list[float]]:
        """Pipeline service rate and per-NF (cpp, misses) lists.

        Each NF gets ``cpu_share`` cores at ``cpu_freq_ghz``; the chain
        rate is the slowest stage.
        """
        profile = chain_profile(chain, packet_bytes, self.server.llc.line_bytes)
        cycles, misses = self._chain_costs(
            profile, float(knobs.batch_size), knobs.dma_bytes, llc_bytes, contention
        )
        freq_hz = knobs.cpu_freq_ghz * 1e9
        rates = knobs.cpu_share * freq_hz / cycles
        return float(rates.min()), [float(c) for c in cycles], [float(m) for m in misses]

    def step(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        offered_pps: float,
        packet_bytes: float,
        dt_s: float = 1.0,
        *,
        llc_bytes: float | None = None,
        contention: float | None = None,
        include_power: bool = True,
    ) -> TelemetrySample:
        """Simulate one control interval for a single chain.

        Parameters
        ----------
        llc_bytes:
            Chain's requested LLC capacity; default derives it from the
            ``llc_fraction`` knob against the allocatable region.  The
            effective capacity additionally reflects CAT being disabled.
        contention:
            Cross-chain miss-ratio multiplier (>= 1) computed by the node
            when several chains share the socket; default 1 (or the
            no-CAT contention when CAT is disabled).
        """
        if offered_pps < 0 or packet_bytes <= 0 or dt_s <= 0:
            raise ValueError("offered rate/packet size/dt must be valid")
        llc = self.server.llc
        if llc_bytes is None:
            llc_bytes = knobs.llc_fraction * llc.way_bytes * llc.allocatable_ways
        eff_llc, cat_contention = self.effective_llc_bytes(llc_bytes)
        eff_contention = cat_contention if contention is None else max(contention, cat_contention)

        profile = chain_profile(chain, packet_bytes, llc.line_bytes)
        cpps, misses_pp = self._chain_costs(
            profile, float(knobs.batch_size), knobs.dma_bytes, eff_llc, eff_contention
        )

        # 1. NIC admission (line rate).
        nic_cap = self.server.nic.max_pps(packet_bytes)
        admitted = min(offered_pps, nic_cap)

        # 2. Rx-ring delivery (DMA buffer absorption).
        delivery = self.dma_model.delivery_ratio(knobs.dma_bytes, packet_bytes, admitted)
        delivered = admitted * delivery

        # 3. Pipeline bottleneck.
        freq_hz = knobs.cpu_freq_ghz * 1e9
        rates = knobs.cpu_share * freq_hz / cpps
        chain_rate = float(rates.min())
        achieved = min(delivered, chain_rate)

        # 4. Receive livelock: when the first NF cannot keep up, the
        #    packets it receives and drops still cost rx cycles, eating
        #    into its packet-processing budget.
        c0_capacity = knobs.cpu_share * freq_hz
        rx = self.params.rx_drop_cycles
        cpp0 = float(cpps[0])
        if delivered * cpp0 > c0_capacity and cpp0 > rx:
            nf0_rate = max(0.0, (c0_capacity - delivered * rx) / (cpp0 - rx))
            achieved = min(achieved, nf0_rate)

        # 5. Per-NF utilization.
        capacity = knobs.cpu_share * freq_hz
        work = achieved * cpps
        work[0] = work[0] + max(0.0, delivered - achieved) * rx
        if capacity > 0:
            util = np.minimum(1.0, work / capacity)
        else:
            util = np.zeros_like(work)
        if self.polling == PollingMode.POLL:
            util = np.full_like(util, 1.0 if knobs.cpu_share > 0 else 0.0)
        else:
            util = np.minimum(1.0, util + self.params.adaptive_poll_overhead)
        busy_cores = float(np.sum(knobs.cpu_share * util))
        per_nf = [
            NFTelemetry(
                name=profile.names[i],
                cycles_per_packet=float(cpps[i]),
                service_rate_pps=float(rates[i]),
                utilization=float(util[i]),
                misses_per_packet=float(misses_pp[i]),
            )
            for i in range(len(profile))
        ]

        # Infrastructure (Rx/Tx) threads.
        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        infra_busy = self.params.infra_cores * infra_util
        allocated_cores = knobs.cpu_share * len(chain) + self.params.infra_cores
        total_busy = busy_cores + infra_busy

        # 6. Node power via the Fan et al. model.  Power utilization is
        #    node-level (busy fraction of all cores), so consuming more
        #    cycles always costs more energy; cores the chain did not
        #    allocate sit parked in C6 (GreenNFV "turn[s] off idle CPU
        #    cores"), shrinking idle power, unless parking is disabled
        #    (the Baseline leaves every core online).
        cpu_utilization = min(1.0, total_busy / allocated_cores)
        if include_power:
            power_w = self.node_power(
                total_busy, allocated_cores, knobs.cpu_freq_ghz
            )
            energy_j = power_w * dt_s
        else:
            power_w = 0.0
            energy_j = 0.0

        # 7. Diagnostics.
        total_misses_pp = float(np.sum(misses_pp))
        miss_rate = achieved * total_misses_pp
        dropped = max(0.0, offered_pps - achieved)
        # Latency: batch fill time + per-NF processing + queueing headroom.
        proc_s = float(np.sum(cpps)) / freq_hz if freq_hz > 0 else float("inf")
        fill_s = knobs.batch_size / max(achieved, 1.0)
        utilization_peak = (
            min(1.0, achieved / chain_rate) if chain_rate > 0 else 1.0
        )
        queue_s = proc_s * utilization_peak / max(1e-6, 1.0 - min(utilization_peak, 0.999))
        latency_s = fill_s + proc_s + queue_s

        return TelemetrySample(
            dt_s=dt_s,
            offered_pps=offered_pps,
            achieved_pps=achieved,
            packet_bytes=packet_bytes,
            throughput_gbps=pps_to_gbps(achieved, packet_bytes),
            llc_miss_rate_per_s=miss_rate,
            cpu_utilization=cpu_utilization,
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=dropped,
            latency_s=latency_s,
            arrival_rate_pps=offered_pps,
            per_nf=per_nf,
        )

    def step_batch(
        self,
        chain: ServiceChain,
        knobs_grid,
        offered_grid,
        packet_bytes: float,
        dt_s: float = 1.0,
        *,
        llc_bytes=None,
        contention=None,
        include_power: bool = True,
    ) -> BatchTelemetry:
        """Evaluate K knob settings x L offered loads in one call.

        Parameters
        ----------
        knobs_grid:
            Sequence of :class:`KnobSettings` or a ``(K, 5)`` array in
            :meth:`KnobSettings.as_array` layout.
        offered_grid:
            Offered packet rates, shape ``(L,)`` (scalars are promoted).
        packet_bytes:
            One frame size (grid arrays come back ``(K, L)``) or a
            one-dimensional axis of P frame sizes — then the whole
            K x L x P grid is evaluated in this one call and grid arrays
            come back ``(K, L, P)`` (per-knob/per-NF quantities gain the
            packet axis too: ``(K, P)`` / ``(K, P, n)``).
        llc_bytes:
            Requested LLC capacity override — scalar or per-knob ``(K,)``
            array; default derives it from each setting's
            ``llc_fraction``.
        contention:
            Cross-chain miss multiplier — scalar or per-knob ``(K,)``.

        Every point is numerically equivalent to the corresponding
        :meth:`step` call.
        """
        if not (np.isscalar(packet_bytes) or np.ndim(packet_bytes) == 0):
            return self._step_batch_packet_axis(
                chain,
                knobs_grid,
                offered_grid,
                packet_bytes,
                dt_s,
                llc_bytes=llc_bytes,
                contention=contention,
                include_power=include_power,
            )
        packet_bytes = float(packet_bytes)
        if packet_bytes <= 0 or dt_s <= 0:
            raise ValueError("packet size/dt must be positive")
        # One physics pipeline: evaluate as a length-1 packet axis and
        # squeeze it back out (bitwise identical to a dedicated 2-D
        # evaluation; the packet-axis equivalence tests pin this).
        full = self._step_batch_packet_axis(
            chain,
            knobs_grid,
            offered_grid,
            [packet_bytes],
            dt_s,
            llc_bytes=llc_bytes,
            contention=contention,
            include_power=include_power,
        )
        return BatchTelemetry(
            dt_s=dt_s,
            packet_bytes=packet_bytes,
            offered_pps=full.offered_pps,
            achieved_pps=full.achieved_pps[:, :, 0],
            throughput_gbps=full.throughput_gbps[:, :, 0],
            llc_miss_rate_per_s=full.llc_miss_rate_per_s[:, :, 0],
            cpu_utilization=full.cpu_utilization[:, :, 0],
            cpu_cores_busy=full.cpu_cores_busy[:, :, 0],
            power_w=full.power_w[:, :, 0],
            energy_j=full.energy_j[:, :, 0],
            dropped_pps=full.dropped_pps[:, :, 0],
            latency_s=full.latency_s[:, :, 0],
            chain_rate_pps=full.chain_rate_pps[:, 0],
            cycles_per_packet=full.cycles_per_packet[:, 0, :],
            misses_per_packet=full.misses_per_packet[:, 0, :],
            service_rate_pps=full.service_rate_pps[:, 0, :],
            nf_utilization=full.nf_utilization[:, :, 0, :],
            nf_names=full.nf_names,
        )

    def _step_batch_packet_axis(
        self,
        chain: ServiceChain,
        knobs_grid,
        offered_grid,
        packet_grid,
        dt_s: float = 1.0,
        *,
        llc_bytes=None,
        contention=None,
        include_power: bool = True,
    ) -> BatchTelemetry:
        """K knobs x L loads x P packet sizes in one vectorized pass.

        Axis convention: grid quantities are ``(K, L, P)``; per-knob
        per-NF quantities are ``(K, P, n)`` (the NF axis stays last so
        :meth:`_chain_costs` broadcasting is unchanged).  Each (k, l, p)
        point is numerically equivalent to the corresponding scalar
        :meth:`step` call at ``packet_grid[p]``.
        """
        if dt_s <= 0:
            raise ValueError("packet size/dt must be positive")
        pkt = np.atleast_1d(np.asarray(packet_grid, dtype=np.float64))
        if pkt.ndim != 1 or pkt.size == 0:
            raise ValueError("packet-size grid must be a non-empty 1-D axis")
        if np.any(pkt <= 0):
            raise ValueError("packet size/dt must be positive")
        offered = np.atleast_1d(np.asarray(offered_grid, dtype=np.float64))
        if offered.ndim != 1:
            raise ValueError("offered grid must be one-dimensional")
        if np.any(offered < 0):
            raise ValueError("offered rates must be non-negative")
        share, freq, llc_frac, dma_bytes, batch = _knob_arrays(knobs_grid)
        llc = self.server.llc
        eff_llc, eff_contention = self._resolve_llc_contention(
            share, llc_frac, llc_bytes, contention
        )

        # One stack row per packet size (same chain throughout, so lanes
        # are homogeneous — no padding mask).
        stack = chain_stack(
            (chain,) * pkt.size, tuple(float(p) for p in pkt), llc.line_bytes
        )
        n = len(stack)
        # Knob columns as (K, 1, 1): the packet axis is second, NFs last.
        cpps, misses_pp = self._chain_costs(
            stack,
            batch[:, None, None],
            dma_bytes[:, None, None],
            np.asarray(eff_llc, dtype=np.float64)[:, None, None],
            eff_contention[:, None, None],
        )  # (K, P, n)

        # 1. NIC admission (line rate per frame size).
        nic_cap = self.server.nic.max_pps(pkt)  # (P,)
        admitted = np.minimum(offered[:, None], nic_cap[None, :])  # (L, P)

        # 2. Rx-ring delivery (DMA buffer absorption).
        delivery = self.dma_model.delivery_ratio(
            dma_bytes[:, None, None], pkt, admitted[None, :, :]
        )  # (K, L, P)
        delivered = admitted[None, :, :] * delivery

        # 3. Pipeline bottleneck.
        freq_hz = freq * 1e9
        capacity = share * freq_hz  # (K,)
        rates = capacity[:, None, None] / cpps  # (K, P, n)
        chain_rate = rates.min(axis=2)  # (K, P)
        achieved = np.minimum(delivered, chain_rate[:, None, :])  # (K, L, P)

        # 4. Receive livelock.
        rx = self.params.rx_drop_cycles
        cpp0 = cpps[:, :, 0]  # (K, P)
        livelock = (delivered * cpp0[:, None, :] > capacity[:, None, None]) & (
            cpp0 > rx
        )[:, None, :]
        denom = np.where(cpp0 > rx, cpp0 - rx, 1.0)
        nf0_rate = np.maximum(
            0.0, (capacity[:, None, None] - delivered * rx) / denom[:, None, :]
        )
        achieved = np.where(livelock, np.minimum(achieved, nf0_rate), achieved)

        # 5. Per-NF utilization.  Under POLL it is a constant of the
        #    knobs, so the (K, L, P, n) work pipeline is skipped.
        if self.polling == PollingMode.POLL:
            util = np.broadcast_to(
                np.where(share > 0, 1.0, 0.0)[:, None, None, None],
                achieved.shape + (n,),
            ).copy()
        else:
            work = achieved[:, :, :, None] * cpps[:, None, :, :]  # (K, L, P, n)
            work[:, :, :, 0] = work[:, :, :, 0] + np.maximum(
                0.0, delivered - achieved
            ) * rx
            cap4 = capacity[:, None, None, None]
            util = np.where(
                cap4 > 0, np.minimum(1.0, work / np.where(cap4 > 0, cap4, 1.0)), 0.0
            )
            util = np.minimum(1.0, util + self.params.adaptive_poll_overhead)
        busy_cores = np.sum(share[:, None, None, None] * util, axis=3)  # (K, L, P)

        # Infrastructure (Rx/Tx) threads.
        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        infra_busy = self.params.infra_cores * infra_util
        allocated_cores = share * n + self.params.infra_cores  # (K,)
        total_busy = busy_cores + infra_busy

        # 6. Node power (one vectorized Fan-model evaluation).
        cpu_utilization = np.minimum(
            1.0, total_busy / allocated_cores[:, None, None]
        )
        if include_power:
            power_w = self.node_power(
                total_busy,
                np.broadcast_to(allocated_cores[:, None, None], total_busy.shape),
                np.broadcast_to(freq[:, None, None], total_busy.shape),
            )
            energy_j = power_w * dt_s
        else:
            power_w = np.zeros_like(total_busy)
            energy_j = np.zeros_like(total_busy)

        # 7. Diagnostics.
        total_misses_pp = np.sum(misses_pp, axis=2)  # (K, P)
        miss_rate = achieved * total_misses_pp[:, None, :]
        dropped = np.maximum(0.0, offered[None, :, None] - achieved)
        fcol = freq_hz[:, None]
        proc_s = np.where(
            fcol > 0, np.sum(cpps, axis=2) / np.where(fcol > 0, fcol, 1.0), np.inf
        )  # (K, P)
        fill_s = batch[:, None, None] / np.maximum(achieved, 1.0)
        cr = chain_rate[:, None, :]
        utilization_peak = np.where(
            cr > 0, np.minimum(1.0, achieved / np.where(cr > 0, cr, 1.0)), 1.0
        )
        queue_s = proc_s[:, None, :] * utilization_peak / np.maximum(
            1e-6, 1.0 - np.minimum(utilization_peak, 0.999)
        )
        latency_s = fill_s + proc_s[:, None, :] + queue_s

        return BatchTelemetry(
            dt_s=dt_s,
            packet_bytes=pkt,
            offered_pps=offered,
            achieved_pps=achieved,
            throughput_gbps=pps_to_gbps(achieved, pkt[None, None, :]),
            llc_miss_rate_per_s=miss_rate,
            cpu_utilization=cpu_utilization,
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=dropped,
            latency_s=latency_s,
            chain_rate_pps=chain_rate,
            cycles_per_packet=cpps,
            misses_per_packet=misses_pp,
            service_rate_pps=rates,
            nf_utilization=util,
            nf_names=stack.profiles[0].names,
        )

    def compile_chains(
        self,
        stack: ChainStack,
        knobs_grid,
        *,
        llc_bytes=None,
        contention=None,
    ) -> "ChainKernelPlan":
        """Precompute the load-independent half of multi-chain stepping.

        Per-NF costs, service rates, ring absorb rates and NIC caps
        depend only on (chains, knobs, LLC grants, contention) — not on
        the interval's offered load — so they are evaluated once here;
        :meth:`ChainKernelPlan.step` then prices each interval with a
        handful of vectorized ops.  Nodes cache one plan per
        knob/deployment generation, which is what makes steady-state
        multi-chain stepping cheap.
        """
        share, freq, llc_frac, dma_bytes, batch = _knob_arrays(knobs_grid)
        if share.shape[0] != stack.rows:
            raise ValueError("need one knob setting per stacked chain")
        eff_llc, eff_contention = self._resolve_llc_contention(
            share, llc_frac, llc_bytes, contention
        )

        cpps, misses_pp = self._chain_costs(
            stack,
            batch[:, None],
            dma_bytes[:, None],
            eff_llc[:, None],
            eff_contention[:, None],
        )
        valid = stack.valid
        if valid is not None:
            # Padded lanes carry the per-call overhead terms; zero them so
            # sums and mins see only real NFs.
            cpps = np.where(valid, cpps, 0.0)
            misses_pp = np.where(valid, misses_pp, 0.0)
        pkt = stack.packet_bytes[:, 0]  # (R,)

        # Pipeline service rates.
        freq_hz = freq * 1e9
        capacity = share * freq_hz  # (R,)
        if valid is None:
            rates = capacity[:, None] / cpps  # (R, n)
            chain_rate = rates.min(axis=1)
        else:
            rates = capacity[:, None] / np.where(valid, cpps, 1.0)
            chain_rate = np.where(valid, rates, np.inf).min(axis=1)
            rates = np.where(valid, rates, 0.0)

        # Receive-livelock constants of NF 0.
        rx = self.params.rx_drop_cycles
        cpp0 = cpps[:, 0]
        livelock_able = cpp0 > rx
        livelock_denom = np.where(livelock_able, cpp0 - rx, 1.0)

        # NIC line rate and rx-ring absorb rate per chain.
        nic_cap = self.server.nic.max_pps(pkt)
        absorb_pps = self.dma_model.absorb_rate_pps(dma_bytes, pkt)

        proc_s = np.where(
            freq_hz > 0,
            np.sum(cpps, axis=1) / np.where(freq_hz > 0, freq_hz, 1.0),
            np.inf,
        )
        total_misses_pp = np.sum(misses_pp, axis=1)
        allocated_cores = share * stack.n_nfs + self.params.infra_cores
        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        if self.polling == PollingMode.POLL:
            util_poll = np.broadcast_to(
                np.where(share > 0, 1.0, 0.0)[:, None], cpps.shape
            ).copy()
            if valid is not None:
                util_poll = np.where(valid, util_poll, 0.0)
            busy_poll = np.sum(share[:, None] * util_poll, axis=1)
        else:
            util_poll = None
            busy_poll = None

        # The cached arrays are aliased into every MultiChainTelemetry the
        # plan produces; freeze them so an in-place write on a telemetry
        # object cannot corrupt the plan for later intervals.
        for arr in (cpps, misses_pp, rates, chain_rate, nic_cap,
                    absorb_pps, proc_s, total_misses_pp):
            if arr.flags.writeable:
                arr.flags.writeable = False
        return ChainKernelPlan(
            engine=self,
            stack=stack,
            share=share,
            freq=freq,
            batch=batch,
            capacity=capacity,
            cpps=cpps,
            misses_pp=misses_pp,
            rates=rates,
            chain_rate=chain_rate,
            livelock_able=livelock_able,
            livelock_denom=livelock_denom,
            nic_cap=nic_cap,
            absorb_pps=absorb_pps,
            proc_s=proc_s,
            total_misses_pp=total_misses_pp,
            allocated_cores=allocated_cores,
            infra_busy=self.params.infra_cores * infra_util,
            util_poll=util_poll,
            busy_poll=busy_poll,
        )

    def step_chains(
        self,
        stack: ChainStack,
        knobs_grid,
        offered_grid,
        dt_s: float = 1.0,
        *,
        llc_bytes=None,
        contention=None,
        include_power: bool = True,
    ) -> MultiChainTelemetry:
        """Step R chains diagonally — each at its own knobs/load — at once.

        This is the multi-chain node's hot path: one vectorized pass
        replaces R scalar :meth:`step` calls.  Row ``r`` of the result
        is numerically equivalent (<= 1 ulp) to
        ``step(stack.profiles[r], knobs_grid[r], offered_grid[r], ...)``.
        One-shot convenience over :meth:`compile_chains` +
        :meth:`ChainKernelPlan.step`; callers stepping the same knobs
        repeatedly should hold on to the plan instead.

        Parameters
        ----------
        stack:
            The hosted chains' profiles (one row per chain, each at its
            own packet size); see :func:`chain_stack`.
        knobs_grid:
            R knob settings (sequence of :class:`KnobSettings` or an
            ``(R, 5)`` array), one per chain.
        offered_grid:
            Offered packet rates, shape ``(R,)``.
        llc_bytes:
            Per-chain granted LLC capacity, shape ``(R,)``; default
            derives it from each setting's ``llc_fraction``.
        contention:
            Cross-chain miss multiplier — scalar or ``(R,)``.
        """
        plan = self.compile_chains(
            stack, knobs_grid, llc_bytes=llc_bytes, contention=contention
        )
        return plan.step(offered_grid, dt_s, include_power=include_power)

    def fixed_volume_energy(
        self,
        chain: ServiceChain,
        knobs: KnobSettings,
        offered_pps: float,
        packet_bytes: float,
        volume_packets: float,
        **step_kwargs,
    ) -> tuple[float, TelemetrySample]:
        """Energy to process a fixed packet volume (Fig. 3's metric).

        Runs one representative interval to get rate and power, then
        charges ``power * volume / rate``.  Returns (energy_j, sample).
        """
        if volume_packets <= 0:
            raise ValueError("volume must be positive")
        sample = self.step(chain, knobs, offered_pps, packet_bytes, 1.0, **step_kwargs)
        if sample.achieved_pps <= 0:
            return float("inf"), sample
        duration = volume_packets / sample.achieved_pps
        return sample.power_w * duration, sample
