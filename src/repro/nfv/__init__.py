"""NFV platform substrate: NFs, chains, rings, engine, nodes, controller."""

from repro.nfv.chain import (
    ServiceChain,
    default_chain,
    heavy_chain,
    light_chain,
    microbench_chains,
)
from repro.nfv.cluster import Cluster, ClusterSample, consolidation_plan
from repro.nfv.cluster_kernel import (
    ClusterKernel,
    ClusterTelemetry,
    engines_compatible,
)
from repro.nfv.controller import ChainBinding, ChainObservation, OnvmController
from repro.nfv.engine import (
    EngineParams,
    NFTelemetry,
    PacketEngine,
    PollingMode,
    TelemetrySample,
)
from repro.nfv.knobs import (
    DEFAULT_RANGES,
    KnobRanges,
    KnobSettings,
    baseline_settings,
    heuristic_initial_settings,
)
from repro.nfv.nf import (
    CATALOG,
    CDN_CACHE,
    EPC,
    FIREWALL,
    IDS,
    MONITOR,
    NAT,
    NFSpec,
    ROUTER,
    TUNNEL_GW,
    get_nf,
)
from repro.nfv.node import HostedChain, Node
from repro.nfv.per_nf import PerNFEngine, PerNFKnobVector
from repro.nfv.rings import FluidRing, RingBuffer

__all__ = [
    "ServiceChain",
    "default_chain",
    "heavy_chain",
    "light_chain",
    "microbench_chains",
    "Cluster",
    "ClusterKernel",
    "ClusterSample",
    "ClusterTelemetry",
    "consolidation_plan",
    "engines_compatible",
    "ChainBinding",
    "ChainObservation",
    "OnvmController",
    "EngineParams",
    "NFTelemetry",
    "PacketEngine",
    "PollingMode",
    "TelemetrySample",
    "DEFAULT_RANGES",
    "KnobRanges",
    "KnobSettings",
    "baseline_settings",
    "heuristic_initial_settings",
    "CATALOG",
    "CDN_CACHE",
    "EPC",
    "FIREWALL",
    "IDS",
    "MONITOR",
    "NAT",
    "NFSpec",
    "ROUTER",
    "TUNNEL_GW",
    "get_nf",
    "HostedChain",
    "Node",
    "PerNFEngine",
    "PerNFKnobVector",
    "FluidRing",
    "RingBuffer",
]
