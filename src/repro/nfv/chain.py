"""Service chains.

A service chain is a series connection of NFs that every packet of the
chain's flows traverses in order ("Network functions are chained with a
series connection", §5).  The chain is the unit GreenNFV schedules: one
LLC CLOS, one knob vector, one SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nfv.nf import FIREWALL, IDS, MONITOR, NAT, NFSpec, ROUTER, get_nf


@dataclass(frozen=True)
class ServiceChain:
    """An ordered series of NFs processing one traffic aggregate."""

    name: str
    nfs: tuple[NFSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chain needs a name")
        if not self.nfs:
            raise ValueError("chain needs at least one NF")

    def __len__(self) -> int:
        return len(self.nfs)

    def __iter__(self):
        return iter(self.nfs)

    @property
    def total_state_bytes(self) -> float:
        """Aggregate resident state of the chain's NFs (LLC demand)."""
        return sum(nf.state_bytes for nf in self.nfs)

    @property
    def total_base_cycles(self) -> float:
        """Sum of per-packet fixed costs across the chain."""
        return sum(nf.base_cycles for nf in self.nfs)

    def cycles_for_packet(self, packet_bytes: float) -> float:
        """Pure compute cycles for one packet through the whole chain."""
        return sum(nf.cycles_for_packet(packet_bytes) for nf in self.nfs)

    @staticmethod
    def from_names(name: str, nf_names: list[str] | tuple[str, ...]) -> "ServiceChain":
        """Build a chain from catalog NF names (config-file style)."""
        return ServiceChain(name, tuple(get_nf(n) for n in nf_names))


def default_chain(name: str = "chain0") -> ServiceChain:
    """The paper's canonical 3-NF chain (Figs. 2, 6-10 use 3 NFs)."""
    return ServiceChain(name, (NAT, ROUTER, IDS))


def light_chain(name: str = "light") -> ServiceChain:
    """A lightweight NAT+firewall chain (the paper's 'lightweight' class)."""
    return ServiceChain(name, (NAT, FIREWALL))


def heavy_chain(name: str = "heavy") -> ServiceChain:
    """A heavyweight monitoring+IDS chain."""
    return ServiceChain(name, (FIREWALL, MONITOR, IDS))


def microbench_chains() -> tuple[ServiceChain, ServiceChain]:
    """The two chains C1/C2 of the Fig. 1 LLC micro-benchmark.

    C1 carries the 13 Mpps small-packet flow (light, fast NFs so the LLC
    is the binding resource); C2 carries the 1 Mpps flow.
    """
    c1 = ServiceChain("C1", (NAT, FIREWALL, ROUTER))
    c2 = ServiceChain("C2", (NAT, MONITOR))
    return c1, c2
