"""Network-function catalog.

The paper's chains are built from classic middlebox VNFs — "firewalls,
routers, tunneling gateways, CDNs" (§1) — ranging from "lightweight
process (e.g., NAT, firewall)" to "more heavyweight (e.g., Evolved Packet
Core)" (§4.2).  Each NF is characterized by the per-packet work it does:

* ``base_cycles`` — fixed per-packet instruction cost (header parsing,
  hashing, metadata updates) at the reference IPC;
* ``per_byte_cycles`` — payload-*computation* cost (checksums, pattern
  matching) per frame byte;
* ``state_bytes`` — resident working set (rule tables, flow tables,
  signature databases) that competes with packet data for LLC capacity;
* ``state_lines_touched`` — cache lines of that state dereferenced per
  packet (table walks); each one is a potential LLC miss when the state
  does not fit the chain's CAT allocation;
* ``payload_touch_fraction`` — fraction of the frame's cache lines the NF
  actually reads (header-only NFs touch ~2 lines; DPI reads everything).

The numbers are order-of-magnitude figures for DPDK-based NFs; the
experiments depend on their *relative* weight (an IDS chain is several
times heavier and far more memory-bound than a NAT chain), which these
preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import mb_to_bytes

#: Cache lines of frame header every NF must read regardless of payload.
HEADER_LINES = 2.0


@dataclass(frozen=True)
class NFSpec:
    """Static per-packet cost model of one virtual network function."""

    name: str
    base_cycles: float
    per_byte_cycles: float
    state_bytes: float
    state_lines_touched: float
    payload_touch_fraction: float
    description: str = ""

    def __post_init__(self) -> None:
        if min(self.base_cycles, self.per_byte_cycles, self.state_bytes) < 0:
            raise ValueError("NF cost parameters must be non-negative")
        if self.state_lines_touched < 0:
            raise ValueError("state_lines_touched must be non-negative")
        if not 0.0 <= self.payload_touch_fraction <= 1.0:
            raise ValueError("payload_touch_fraction must be in [0, 1]")
        if not self.name:
            raise ValueError("NF needs a name")

    def cycles_for_packet(self, packet_bytes: float) -> float:
        """Pure compute cycles for one packet (no memory-system effects)."""
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        return self.base_cycles + self.per_byte_cycles * packet_bytes

    def touched_lines(self, packet_bytes: float, line_bytes: float = 64.0) -> float:
        """Cache lines of the frame this NF reads per packet."""
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        lines = max(1.0, packet_bytes / line_bytes)
        return min(lines, HEADER_LINES + self.payload_touch_fraction * lines)


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

NAT = NFSpec(
    "nat",
    base_cycles=120.0,
    per_byte_cycles=0.0,
    state_bytes=mb_to_bytes(0.125),
    state_lines_touched=4.0,
    payload_touch_fraction=0.0,
    description="Source NAT: 5-tuple hash + header rewrite (lightweight).",
)

FIREWALL = NFSpec(
    "firewall",
    base_cycles=180.0,
    per_byte_cycles=0.0,
    state_bytes=mb_to_bytes(0.25),
    state_lines_touched=6.0,
    payload_touch_fraction=0.0,
    description="Stateful ACL firewall: rule-table match on headers.",
)

ROUTER = NFSpec(
    "router",
    base_cycles=150.0,
    per_byte_cycles=0.0,
    state_bytes=mb_to_bytes(0.5),
    state_lines_touched=8.0,
    payload_touch_fraction=0.0,
    description="LPM IPv4 router: trie lookup + TTL/cksum update.",
)

MONITOR = NFSpec(
    "monitor",
    base_cycles=140.0,
    per_byte_cycles=0.05,
    state_bytes=mb_to_bytes(1.0),
    state_lines_touched=8.0,
    payload_touch_fraction=0.10,
    description="Flow monitor: per-flow counters, light payload sampling.",
)

TUNNEL_GW = NFSpec(
    "tunnel_gw",
    base_cycles=220.0,
    per_byte_cycles=0.15,
    state_bytes=mb_to_bytes(0.5),
    state_lines_touched=6.0,
    payload_touch_fraction=1.0,
    description="Tunneling gateway: encap/decap touches the whole frame.",
)

IDS = NFSpec(
    "ids",
    base_cycles=400.0,
    per_byte_cycles=2.4,
    state_bytes=mb_to_bytes(4.0),
    state_lines_touched=32.0,
    payload_touch_fraction=1.0,
    description="Signature IDS: multi-pattern scan over the payload "
    "(several cycles/byte, the chain's compute bottleneck).",
)

EPC = NFSpec(
    "epc",
    base_cycles=900.0,
    per_byte_cycles=0.25,
    state_bytes=mb_to_bytes(8.0),
    state_lines_touched=40.0,
    payload_touch_fraction=0.30,
    description="Evolved Packet Core bearer processing (heavyweight).",
)

CDN_CACHE = NFSpec(
    "cdn_cache",
    base_cycles=350.0,
    per_byte_cycles=0.30,
    state_bytes=mb_to_bytes(6.0),
    state_lines_touched=24.0,
    payload_touch_fraction=0.50,
    description="CDN edge cache front-end: content hash + hot-object table.",
)

CATALOG: dict[str, NFSpec] = {
    nf.name: nf
    for nf in (NAT, FIREWALL, ROUTER, MONITOR, TUNNEL_GW, IDS, EPC, CDN_CACHE)
}


def get_nf(name: str) -> NFSpec:
    """Look up a catalog NF by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown NF {name!r}; catalog: {sorted(CATALOG)}"
        ) from None
