"""Cluster-wide stepping kernel: one vectorized pass over all nodes.

The SDN steering loop and the multi-node ``Cluster`` scenarios step many
nodes in lockstep, each node hosting several chain replicas.  PR 3
collapsed the per-*chain* Python loop into one
:class:`~repro.nfv.engine.ChainKernelPlan` pass per node; this module
collapses the per-*node* loop the same way: every hosted chain across
the whole cluster becomes one row of a single padded super-stack, the
load-independent half compiles once per cluster-wide (knobs, deployment)
generation, and an interval is priced for all replicas in one
vectorized evaluation.

The dispatch mirrors :meth:`~repro.nfv.node.Node.step_all` exactly:

* a configuration on first sight runs the per-node ``step_all`` loop
  (bit-identical, and cheaper for knob-churning RL that never revisits
  a setting);
* on second sight the cluster-wide :class:`ClusterKernelPlan` compiles
  and prices every subsequent interval until a knob/deployment change
  (or new frame sizes) invalidates it;
* nodes with incompatible hardware or engine calibration always take
  the per-node path — the kernel only fuses physics it can prove is the
  same.

Node-level bookkeeping (one Fan-model power evaluation per node,
cycle-proportional power attribution, rx-ring and energy-meter
integration) replays the exact scalar arithmetic of ``step_all``, so
every sample matches the per-node path to <= 1 ulp (measured 0 ulp;
``tests/test_cluster_kernel.py`` pins it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.nfv.engine import (
    ChainKernelPlan,
    MultiChainTelemetry,
    TelemetrySample,
    chain_stack,
)
from repro.nfv.knobs import KnobSettings
from repro.nfv.node import Node
from repro.nfv.rings import offer_many


def engines_compatible(nodes) -> bool:
    """Whether all nodes' physics can be fused into one kernel pass.

    The fused plan evaluates every row against one engine's calibration
    and hardware curves, so the nodes must agree on the engine
    parameters, polling mode, CAT/parking policy and every
    physics-bearing hardware spec (CPU, LLC, NIC, DMA, power model).
    Cosmetic spec fields (name, memory, OS string) may differ.
    """
    if not nodes:
        return False
    first = nodes[0]
    e0, s0 = first.engine, first.server
    for node in nodes[1:]:
        e, s = node.engine, node.server
        if (
            e.params != e0.params
            or e.polling != e0.polling
            or e.cat_enabled != e0.cat_enabled
            or e.park_idle_cores != e0.park_idle_cores
        ):
            return False
        if (s.cpu, s.llc, s.nic, s.dma, s.power) != (
            s0.cpu,
            s0.llc,
            s0.nic,
            s0.dma,
            s0.power,
        ):
            return False
    return True


@dataclass(frozen=True)
class _FusedMeta:
    """Knob/deployment-static constants cached with the compiled plan.

    Everything here depends only on the (knobs, deployment, frame sizes)
    generation the plan was compiled for — never on the interval's
    offered loads — so the fused step can skip the per-node Python
    rebuild ``step_all`` performs each interval.  The accumulated values
    (``allocated_totals``, ``freq_means``) are produced by the *same*
    sequential Python-float arithmetic as ``step_all``, preserving
    bit-compatibility.
    """

    names: tuple[str, ...]
    slices: tuple[tuple[int, int], ...]
    counts: np.ndarray  # (N,) chains per node, int
    hosted_rows: tuple  # (R,) HostedChain per row
    rings: tuple  # (R,) FluidRing per row
    infra_busy: tuple[float, ...]  # (N,)
    infra_rows: np.ndarray  # (R,) owning node's infra_busy per row
    allocated_totals: np.ndarray  # (N,)
    freq_means: np.ndarray  # (N,)


@dataclass
class ClusterTelemetry:
    """Array view of one cluster interval for array-native consumers.

    ``multi`` is the fused :class:`~repro.nfv.engine.MultiChainTelemetry`
    over all rows (power already attributed); ``names`` maps rows to
    chain names, ``node_slices`` gives each node's contiguous row range,
    and ``bottleneck_utilization`` is the per-row binding-stage
    utilization (the SDN steering signal) computed in one vectorized
    reduction.
    """

    multi: MultiChainTelemetry
    names: tuple[str, ...]
    node_slices: tuple[tuple[int, int], ...]
    node_power_w: np.ndarray  # (N,)
    bottleneck_utilization: np.ndarray  # (R,)

    @property
    def rows(self) -> int:
        """Chains priced in this interval."""
        return len(self.names)


class ClusterKernel:
    """Steps a fixed set of nodes through one fused kernel pass.

    Owns the cluster-wide compiled-plan cache.  ``step`` is a drop-in
    replacement for looping ``node.step_all`` over the nodes: it takes
    the union of the nodes' offered traffic (chain names are unique
    across a cluster) and returns the union of their telemetry, with
    identical node-side effects (knob application, CAT repartitioning,
    rings, meters, ``last_sample``).
    """

    def __init__(self, nodes):
        seen: list[Node] = []
        for node in nodes:
            if not any(node is n for n in seen):
                seen.append(node)
        if not seen:
            raise ValueError("cluster kernel needs at least one node")
        self.nodes: list[Node] = seen
        self._fusable = engines_compatible(self.nodes)
        self._plan: ChainKernelPlan | None = None
        self._plan_key: tuple | None = None
        self._plan_candidate: tuple | None = None
        self._plan_meta: _FusedMeta | None = None
        self._owners_gens: tuple | None = None
        self._owners: dict[str, Node] = {}
        #: Array telemetry of the most recent interval, ``None`` whenever
        #: the interval ran the per-node fallback (every first sight of a
        #: configuration) — callers must handle the cold path.
        self.last_telemetry: ClusterTelemetry | None = None

    # -- dispatch ----------------------------------------------------------

    def step(
        self,
        offered: dict[str, tuple[float, float]],
        dt_s: float = 1.0,
        *,
        knobs: dict[str, KnobSettings] | None = None,
    ) -> dict[str, TelemetrySample]:
        """Advance every node one control interval in one kernel pass.

        Parameters
        ----------
        offered:
            Mapping chain name -> (offered_pps, packet_bytes) across the
            whole cluster; chains without an entry idle at (0, 1518).
        dt_s:
            Interval length in seconds.
        knobs:
            Optional per-chain settings applied (clamped, repartitioned)
            on the owning nodes before the interval runs.

        Returns the union of per-chain telemetry over all nodes.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        gens = tuple(node._config_gen for node in self.nodes)
        if self._owners_gens != gens:
            self._owners = {
                name: node for node in self.nodes for name in node.chains
            }
            self._owners_gens = gens
        owners = self._owners
        if knobs:
            for name, settings in knobs.items():
                if name not in owners:
                    raise KeyError(f"no chain {name!r} on this cluster")
                owners[name].apply_knobs(name, settings)
            gens = tuple(node._config_gen for node in self.nodes)
            self._owners_gens = gens
        unknown = set(offered) - owners.keys()
        if unknown:
            raise KeyError(f"offered traffic for unknown chains: {sorted(unknown)}")

        # Flat load/frame columns in node-major deployment order (the
        # exact per-node ordering step_all uses).
        all_loads: list[float] = []
        all_pkts: list[float] = []
        for node in self.nodes:
            for name in node.chains:
                pps, pkt = offered.get(name, (0.0, 1518.0))
                all_loads.append(pps)
                all_pkts.append(pkt)

        self.last_telemetry = None
        # Cross-chain contention derives from (generation, frame sizes),
        # so the plan cache keys on exactly those.  The dispatch (not the
        # fused loop) is the sanctioned instrumentation point: plan-cache
        # hit/miss counters and the compile span live here, while
        # ``_step_fused`` stays observation-free (KRN002 hot path).
        key = (gens, tuple(all_pkts))
        if not self._fusable or not all_loads:
            if obs._ENABLED:
                obs.inc("kernel/plan_cache/fallback")
            return self._step_per_node(offered, dt_s)
        if self._plan_key == key:
            if obs._ENABLED:
                obs.inc("kernel/plan_cache/hit")
            return self._step_fused(all_loads, dt_s)
        if self._plan_candidate == key:
            if obs._ENABLED:
                obs.inc("kernel/plan_cache/promote")
                with obs.span("kernel/compile", rows=len(all_pkts)):
                    self._compile(key)
            else:
                self._compile(key)
            return self._step_fused(all_loads, dt_s)
        if obs._ENABLED:
            obs.inc("kernel/plan_cache/miss")
        self._plan_candidate = key
        return self._step_per_node(offered, dt_s)

    def _step_per_node(self, offered, dt_s) -> dict[str, TelemetrySample]:
        """Cold path: each node steps through its own ``step_all``."""
        samples: dict[str, TelemetrySample] = {}
        for node in self.nodes:
            node_offered = {
                name: offered[name] for name in node.chains if name in offered
            }
            samples.update(node.step_all(node_offered, dt_s))
        return samples

    # -- the fused path ----------------------------------------------------

    def _compile(self, key) -> None:
        """Build the cluster-wide plan: one super-stack over all nodes.

        Alongside the compiled physics, every knob/deployment-static
        quantity the per-interval fold needs (allocated cores, mean
        frequency, infra-thread busy share, ring/meter handles) is
        precomputed here with ``step_all``'s exact scalar arithmetic.
        """
        _gens, all_pkts = key
        chains: list = []
        pkts: list[float] = []
        knobs: list[KnobSettings] = []
        grants: list[float] = []
        contention = np.empty(len(all_pkts), dtype=np.float64)
        names: list[str] = []
        slices: list[tuple[int, int]] = []
        hosted_rows: list = []
        n_nodes = len(self.nodes)
        counts = np.empty(n_nodes, dtype=np.intp)
        infra_busy: list[float] = []
        allocated_totals = np.empty(n_nodes, dtype=np.float64)
        freq_means = np.empty(n_nodes, dtype=np.float64)
        row = 0
        for j, node in enumerate(self.nodes):
            start = row
            params = node.engine.params
            infra_util = (
                params.infra_util_poll
                if node.engine.polling.value == "poll"
                else params.infra_util_adaptive
            )
            node_infra = params.infra_cores * infra_util
            allocated_total = params.infra_cores
            for name, hosted in node.chains.items():
                chains.append(hosted.chain)
                knobs.append(hosted.knobs)
                grants.append(node.cache.allocated_bytes(name))
                names.append(name)
                hosted_rows.append(hosted)
                allocated_total += hosted.knobs.cpu_share * len(hosted.chain)
            row += len(node.chains)
            pkts_t = all_pkts[start:row]
            pkts.extend(pkts_t)
            contention[start:row] = (
                node.contention_for(pkts_t) if node.chains else 1.0
            )
            slices.append((start, row))
            counts[j] = row - start
            infra_busy.append(node_infra)
            allocated_totals[j] = allocated_total
            freqs = [h.knobs.cpu_freq_ghz for h in node.chains.values()]
            freq_means[j] = (
                sum(freqs) / len(freqs) if freqs else node.server.cpu.base_freq_ghz
            )
        engine = self.nodes[0].engine
        stack = chain_stack(tuple(chains), tuple(pkts), engine.server.llc.line_bytes)
        self._plan = engine.compile_chains(
            stack, knobs, llc_bytes=grants, contention=contention
        )
        self._plan_key = key
        self._plan_meta = _FusedMeta(
            names=tuple(names),
            slices=tuple(slices),
            counts=counts,
            hosted_rows=tuple(hosted_rows),
            rings=tuple(h.rx_ring for h in hosted_rows),
            infra_busy=tuple(infra_busy),
            infra_rows=np.repeat(np.asarray(infra_busy, dtype=np.float64), counts),
            allocated_totals=allocated_totals,
            freq_means=freq_means,
        )

    def _step_fused(self, all_loads, dt_s) -> dict[str, TelemetrySample]:
        """Warm path: price all rows at once, then fold per node.

        The fold replays ``step_all``'s scalar bookkeeping — same
        accumulation order, same float arithmetic — with the elementwise
        parts batched into array ops (elementwise numpy matches the
        scalar operations bit-for-bit) and the order-sensitive per-node
        reductions kept as sequential Python-float sums.  The per-node
        Fan-model evaluations run as one batched array call (also
        elementwise, hence bit-identical to the scalar calls).
        """
        plan = self._plan
        meta = self._plan_meta
        multi = plan.step(all_loads, dt_s, include_power=False)

        busy = multi.cpu_cores_busy
        achieved_dt = multi.achieved_pps * dt_s
        achieved_dt_l = achieved_dt.tolist()

        # Per-node union of busy cores: step_all folds
        # ``infra + max(0, busy_r - infra) + ...`` sequentially in
        # deployment order; np.maximum is elementwise-identical to the
        # scalar max and ``sum(slice, start)`` is the same left fold.
        contrib = np.maximum(0.0, busy - meta.infra_rows).tolist()
        weights = np.maximum(busy, 1e-9)
        weights_l = weights.tolist()
        n_nodes = len(self.nodes)
        busy_totals = np.empty(n_nodes, dtype=np.float64)
        wsums = np.empty(n_nodes, dtype=np.float64)
        # repro-lint: allow[KRN002] order-sensitive scalar folds kept sequential for 0-ulp bit-compat with step_all
        for j, (start, stop) in enumerate(meta.slices):
            busy_totals[j] = sum(contrib[start:stop], meta.infra_busy[j])
            wsums[j] = sum(weights_l[start:stop])

        # One batched Fan-model evaluation across the nodes.
        engine = self.nodes[0].engine
        power_nodes = np.asarray(
            engine.node_power(busy_totals, meta.allocated_totals, meta.freq_means)
        )
        energy_nodes = power_nodes * dt_s
        power_list = power_nodes.tolist()

        # Cycle-proportional attribution: share_r = w_r / wsum_node, then
        # power * share and (power * dt) * share exactly as step_all
        # computes them (weights >= 1e-9, so wsum is always positive).
        shares = weights / np.repeat(wsums, meta.counts)
        rows_power = np.repeat(power_nodes, meta.counts) * shares
        rows_energy = np.repeat(energy_nodes, meta.counts) * shares
        multi.power_w = rows_power
        multi.energy_j = rows_energy
        rows_power_l = rows_power.tolist()

        # Rx-ring integration for every chain in one array pass.
        loads_arr = np.asarray(all_loads, dtype=np.float64)
        offer_many(
            meta.rings,
            np.minimum(loads_arr, multi.achieved_pps + multi.dropped_pps),
            np.maximum(multi.achieved_pps, 1.0),
            dt_s,
        )

        # Node meters and telemetry handoff.
        # repro-lint: allow[KRN002] per-node meter side effects; scalar folds stay sequential for bit-compat
        for j, node in enumerate(self.nodes):
            start, stop = meta.slices[j]
            node.meter.record(
                power_list[j], dt_s, sum(achieved_dt_l[start:stop])
            )
            # The fused pass owns this interval's telemetry; a stale
            # per-node kernel view must not outlive it.
            node.last_multi = None

        chain_samples = multi.samples(lazy_per_nf=True)
        samples: dict[str, TelemetrySample] = {}
        # repro-lint: allow[KRN002] per-chain meter/sample handoff mutates hosted objects; inherently per-object
        for r, name in enumerate(meta.names):
            hosted = meta.hosted_rows[r]
            hosted.meter.record(rows_power_l[r], dt_s, achieved_dt_l[r])
            hosted.last_sample = chain_samples[r]
            samples[name] = chain_samples[r]

        # repro-lint: allow[KRN001] telemetry handoff is the fused pass's one sanctioned output slot
        self.last_telemetry = ClusterTelemetry(
            multi=multi,
            names=meta.names,
            node_slices=meta.slices,
            node_power_w=power_nodes,
            bottleneck_utilization=np.max(multi.nf_utilization, axis=1),
        )
        return samples
