"""ONVM-style controller: the platform's management interface.

The controller binds traffic generators to deployed chains, advances the
platform through control intervals, and exposes the state-collection and
knob-application operations of Algorithm 3's ``NF_CONTROLLER``:

* ``COLLECT_STATE`` -> :meth:`OnvmController.collect_state` returns per
  chain the tuple (throughput T, energy E, CPU utilization xi, arrival
  rate Omega);
* ``controller.ALLOCATE(a)`` -> :meth:`OnvmController.allocate` applies a
  knob vector and runs one interval, returning the next state.

Chains can be configured programmatically or from a config mapping (the
paper: "Service chains can be configured using a configuration file or
SDN controller").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.nfv.chain import ServiceChain
from repro.nfv.engine import TelemetrySample
from repro.nfv.knobs import KnobSettings
from repro.nfv.node import Node
from repro.traffic.analysis import FlowAnalyzer
from repro.traffic.generators import TrafficGenerator
from repro.utils.rng import RngLike, as_generator


@dataclass
class ChainBinding:
    """A chain bound to its traffic source on a node."""

    chain: ServiceChain
    generator: TrafficGenerator
    analyzer: FlowAnalyzer = field(default_factory=FlowAnalyzer)


@dataclass(frozen=True)
class ChainObservation:
    """The RL state tuple of Eq. (8) for one chain, plus diagnostics."""

    throughput_gbps: float  # T
    energy_j: float  # E
    cpu_utilization: float  # xi, 0..1 over provisioned cores
    arrival_rate_pps: float  # Omega
    cpu_cores_busy: float
    llc_miss_rate_per_s: float
    dropped_pps: float
    latency_s: float
    energy_efficiency: float

    def as_array(self) -> np.ndarray:
        """Vector [T, E, xi, Omega] in physical units."""
        return np.asarray(
            [
                self.throughput_gbps,
                self.energy_j,
                self.cpu_utilization,
                self.arrival_rate_pps,
            ],
            dtype=np.float64,
        )


class OnvmController:
    """Manages chains, traffic and knob application on one node."""

    def __init__(self, node: Node | None = None, *, interval_s: float = 1.0, rng: RngLike = None):
        self.node = node or Node()
        self.interval_s = float(interval_s)
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        self.rng = as_generator(rng)
        self._bindings: dict[str, ChainBinding] = {}
        self._t = 0.0
        self._last: dict[str, TelemetrySample] = {}

    # -- configuration -----------------------------------------------------

    def reset(self) -> None:
        """Tear down all chains and rewind the clock, keeping the node.

        The node's engines and hardware models survive (see
        :meth:`Node.reset`); bindings, analyzers and cached telemetry are
        dropped so the next :meth:`add_chain` starts a pristine run.
        """
        self.node.reset()
        self._bindings.clear()
        self._t = 0.0
        self._last = {}

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time."""
        return self._t

    @property
    def bindings(self) -> dict[str, ChainBinding]:
        """Chain name -> binding."""
        return dict(self._bindings)

    def add_chain(
        self,
        chain: ServiceChain,
        generator: TrafficGenerator,
        knobs: KnobSettings | None = None,
    ) -> None:
        """Deploy a chain and bind its traffic source."""
        self.node.deploy(chain, knobs)
        self._bindings[chain.name] = ChainBinding(chain=chain, generator=generator)

    def remove_chain(self, name: str) -> None:
        """Tear a chain down."""
        self.node.undeploy(name)
        del self._bindings[name]

    @staticmethod
    def from_config(
        config: Mapping[str, Mapping],
        generators: Mapping[str, TrafficGenerator],
        node: Node | None = None,
        **kwargs,
    ) -> "OnvmController":
        """Build a controller from a config-file style mapping.

        ``config`` maps chain name -> {"nfs": [names...], optional
        "knobs": {field: value}}; ``generators`` maps chain name to its
        traffic source.
        """
        ctrl = OnvmController(node, **kwargs)
        for name, spec in config.items():
            chain = ServiceChain.from_names(name, list(spec["nfs"]))
            knobs = KnobSettings(**spec.get("knobs", {}))
            if name not in generators:
                raise KeyError(f"no traffic generator for chain {name!r}")
            ctrl.add_chain(chain, generators[name], knobs)
        return ctrl

    # -- Algorithm 3 operations ---------------------------------------------

    def set_knobs(self, name: str, knobs: KnobSettings) -> KnobSettings:
        """Apply knob settings to a chain (clamped); returns applied values."""
        return self.node.apply_knobs(name, knobs)

    def draw_offered(self, dt_s: float) -> dict[str, tuple[float, float]]:
        """Draw one interval's offered (pps, frame size) per bound chain.

        The traffic half of :meth:`run_interval`, split out so a
        cluster-level stepper can gather every node's offered loads
        first and price them all in one fused kernel pass.  Draws
        consume the controller's RNG exactly as ``run_interval`` would.
        """
        offered: dict[str, tuple[float, float]] = {}
        for name, binding in self._bindings.items():
            rate = binding.generator.rate_at(self._t, dt_s, self.rng)
            pkt = binding.generator.packet_sizes.mean_bytes
            offered[name] = (rate, pkt)
        return offered

    def finish_interval(
        self, samples: dict[str, TelemetrySample], dt_s: float
    ) -> None:
        """Book one stepped interval: feed analyzers, advance the clock.

        The bookkeeping half of :meth:`run_interval`, for callers that
        stepped the node themselves (the cluster kernel path).
        """
        for name, sample in samples.items():
            self._bindings[name].analyzer.observe(sample.arrival_rate_pps * dt_s, dt_s)
        self._t += dt_s
        self._last = samples

    def run_interval(
        self,
        dt_s: float | None = None,
        *,
        knobs: dict[str, KnobSettings] | None = None,
    ) -> dict[str, TelemetrySample]:
        """Advance the platform one control interval.

        Draws each chain's offered load from its generator, steps every
        chain through the node's one-pass :meth:`~repro.nfv.node.Node.step_all`
        kernel, and feeds the flow analyzers.  ``knobs`` optionally
        applies per-chain settings first (the joint-action path), saving
        a round of separate ``set_knobs`` calls.
        """
        dt = dt_s if dt_s is not None else self.interval_s
        offered = self.draw_offered(dt)
        samples = self.node.step_all(offered, dt, knobs=knobs)
        self.finish_interval(samples, dt)
        return samples

    def collect_state(self) -> dict[str, ChainObservation]:
        """Per-chain (T, E, xi, Omega) from the most recent interval.

        Before any interval has run, returns zeroed observations with the
        analyzers' current arrival estimates — the cold-start state the
        learning agent sees first.
        """
        out: dict[str, ChainObservation] = {}
        for name, binding in self._bindings.items():
            sample = self._last.get(name)
            if sample is None:
                out[name] = ChainObservation(
                    throughput_gbps=0.0,
                    energy_j=0.0,
                    cpu_utilization=0.0,
                    arrival_rate_pps=binding.analyzer.arrival_rate(),
                    cpu_cores_busy=0.0,
                    llc_miss_rate_per_s=0.0,
                    dropped_pps=0.0,
                    latency_s=0.0,
                    energy_efficiency=0.0,
                )
            else:
                out[name] = ChainObservation(
                    throughput_gbps=sample.throughput_gbps,
                    energy_j=sample.energy_j,
                    cpu_utilization=sample.cpu_utilization,
                    arrival_rate_pps=sample.arrival_rate_pps,
                    cpu_cores_busy=sample.cpu_cores_busy,
                    llc_miss_rate_per_s=sample.llc_miss_rate_per_s,
                    dropped_pps=sample.dropped_pps,
                    latency_s=sample.latency_s,
                    energy_efficiency=sample.energy_efficiency,
                )
        return out

    def allocate(
        self, name: str, knobs: KnobSettings, dt_s: float | None = None
    ) -> tuple[ChainObservation, TelemetrySample]:
        """Algorithm 3 line 6: apply an action, run an interval, observe.

        Returns (next observation for the chain, full telemetry).
        Other chains keep their current knobs for the interval.
        """
        self.set_knobs(name, knobs)
        samples = self.run_interval(dt_s)
        return self.collect_state()[name], samples[name]
