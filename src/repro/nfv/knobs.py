"""Hardware knob settings applied to an NF chain.

These are the five controllable resources of the paper's action space
(Eq. 7): CPU cores, CPU frequency, LLC allocation, DMA buffer size and
packet batch size — per chain.  :class:`KnobRanges` defines the physical
limits (derived from the testbed hardware); :class:`KnobSettings` is a
concrete assignment, with clamping that mirrors what the real control
plane does (frequency ladder snapping, whole-way LLC grants, integer
batch sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.hw.cpu import CpuSpec
from repro.utils.units import mb_to_bytes


@dataclass(frozen=True)
class KnobRanges:
    """Physical limits of each knob on the testbed hardware.

    ``cpu_share`` is the number of (fractional) cores granted to each NF
    of the chain via cgroups cpu.shares — the paper's "CPU sharing ratio".
    Values below 1.0 mean the NF time-shares a core.
    """

    min_cpu_share: float = 0.1
    max_cpu_share: float = 1.5
    min_freq_ghz: float = 1.2
    max_freq_ghz: float = 2.1
    min_llc_fraction: float = 0.05
    max_llc_fraction: float = 1.0
    min_dma_mb: float = 0.5
    max_dma_mb: float = 40.0
    min_batch: int = 1
    max_batch: int = 256

    def __post_init__(self) -> None:
        pairs = [
            (self.min_cpu_share, self.max_cpu_share),
            (self.min_freq_ghz, self.max_freq_ghz),
            (self.min_llc_fraction, self.max_llc_fraction),
            (self.min_dma_mb, self.max_dma_mb),
            (float(self.min_batch), float(self.max_batch)),
        ]
        for lo, hi in pairs:
            if not (0 < lo < hi):
                raise ValueError(f"invalid knob range [{lo}, {hi}]")
        if self.max_llc_fraction > 1.0:
            raise ValueError("LLC fraction cannot exceed 1")


DEFAULT_RANGES = KnobRanges()


@dataclass(frozen=True)
class KnobSettings:
    """One concrete knob assignment for a chain.

    Defaults correspond to the paper's *Baseline*: performance governor
    (max frequency), one core per NF, an untuned even LLC share, a small
    default DMA ring and the DPDK default burst of 32.
    """

    cpu_share: float = 1.0
    cpu_freq_ghz: float = 2.1
    llc_fraction: float = 0.5
    dma_mb: float = 4.0
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.cpu_share <= 0:
            raise ValueError("cpu_share must be positive")
        if self.cpu_freq_ghz <= 0:
            raise ValueError("cpu_freq_ghz must be positive")
        if not 0.0 < self.llc_fraction <= 1.0:
            raise ValueError("llc_fraction must be in (0, 1]")
        if self.dma_mb <= 0:
            raise ValueError("dma_mb must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    @property
    def dma_bytes(self) -> float:
        """DMA buffer size in bytes."""
        return mb_to_bytes(self.dma_mb)

    def clamped(
        self, ranges: KnobRanges = DEFAULT_RANGES, cpu: CpuSpec | None = None
    ) -> "KnobSettings":
        """Clamp to physical ranges and snap frequency to the DVFS ladder.

        This is the 'apply' step the ONVM controller performs: arbitrary
        requested values become the nearest configuration the hardware
        supports.
        """
        freq = float(min(max(self.cpu_freq_ghz, ranges.min_freq_ghz), ranges.max_freq_ghz))
        if cpu is not None:
            freq = cpu.clamp_frequency(freq)
        return KnobSettings(
            cpu_share=float(
                min(max(self.cpu_share, ranges.min_cpu_share), ranges.max_cpu_share)
            ),
            cpu_freq_ghz=freq,
            llc_fraction=float(
                min(max(self.llc_fraction, ranges.min_llc_fraction), ranges.max_llc_fraction)
            ),
            dma_mb=float(min(max(self.dma_mb, ranges.min_dma_mb), ranges.max_dma_mb)),
            batch_size=int(
                min(max(round(self.batch_size), ranges.min_batch), ranges.max_batch)
            ),
        )

    def with_updates(self, **kwargs) -> "KnobSettings":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def as_array(self) -> np.ndarray:
        """Vector form [cpu_share, freq, llc, dma, batch] (physical units)."""
        return np.asarray(
            [
                self.cpu_share,
                self.cpu_freq_ghz,
                self.llc_fraction,
                self.dma_mb,
                float(self.batch_size),
            ],
            dtype=np.float64,
        )

    @staticmethod
    def from_array(arr: np.ndarray) -> "KnobSettings":
        """Inverse of :meth:`as_array`."""
        arr = np.asarray(arr, dtype=np.float64)
        if arr.shape != (5,):
            raise ValueError(f"knob vector must have shape (5,), got {arr.shape}")
        return KnobSettings(
            cpu_share=float(arr[0]),
            cpu_freq_ghz=float(arr[1]),
            llc_fraction=float(arr[2]),
            dma_mb=float(arr[3]),
            batch_size=int(round(arr[4])),
        )


def baseline_settings() -> KnobSettings:
    """The untuned Baseline configuration (performance governor)."""
    return KnobSettings()


def heuristic_initial_settings(cpu: CpuSpec | None = None) -> KnobSettings:
    """Initial assignment of the paper's heuristic Algorithm 1 (lines 1-6).

    One core, the *median* available frequency, batch size 2; LLC and DMA
    are set per-flow by the algorithm itself, so defaults here are
    placeholders the heuristic immediately overwrites.
    """
    spec = cpu or CpuSpec()
    ladder = spec.freq_ladder_ghz
    median_freq = ladder[len(ladder) // 2]
    return KnobSettings(
        cpu_share=1.0,
        cpu_freq_ghz=median_freq,
        llc_fraction=0.5,
        dma_mb=2.0,
        batch_size=2,
    )
