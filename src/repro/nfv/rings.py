"""Inter-NF packet rings.

OpenNetVM gives every NF "two circular queues to track incoming and
outgoing packets"; the ONVM controller's Rx/Tx threads move packet
references between them.  The simulator uses rings in two ways:

* :class:`RingBuffer` — a real bounded FIFO with batch enqueue/dequeue and
  drop accounting, exercised directly by tests and by the fine-grained
  packet-level examples;
* :class:`FluidRing` — a per-interval fluid approximation (occupancy as a
  real number) the discrete-time engine uses to track backpressure,
  occupancy high-water marks and queueing delay via Little's law.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


class RingBuffer:
    """Bounded circular FIFO with drop-tail semantics.

    Mirrors a DPDK ``rte_ring``: fixed power-of-two-ish capacity, bulk
    enqueue/dequeue, and producers observe drops when the ring is full.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = int(capacity)
        self._buf: list[Any] = [None] * self.capacity
        self._head = 0  # next dequeue position
        self._tail = 0  # next enqueue position
        self._count = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.high_water = 0

    def __len__(self) -> int:
        return self._count

    @property
    def free_space(self) -> int:
        """Slots available for enqueue."""
        return self.capacity - self._count

    def enqueue_burst(self, items: list[Any]) -> int:
        """Enqueue up to ``len(items)``; excess is dropped (drop-tail).

        Returns the number actually enqueued, like
        ``rte_ring_enqueue_burst``.
        """
        n = min(len(items), self.free_space)
        for i in range(n):
            self._buf[self._tail] = items[i]
            self._tail = (self._tail + 1) % self.capacity
        self._count += n
        self.enqueued += n
        self.dropped += len(items) - n
        self.high_water = max(self.high_water, self._count)
        return n

    def dequeue_burst(self, max_items: int) -> list[Any]:
        """Dequeue up to ``max_items`` in FIFO order."""
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        n = min(max_items, self._count)
        out = []
        for _ in range(n):
            out.append(self._buf[self._head])
            self._buf[self._head] = None
            self._head = (self._head + 1) % self.capacity
        self._count -= n
        self.dequeued += n
        return out

    def peek(self) -> Any:
        """Return (without removing) the head item, or None when empty."""
        if self._count == 0:
            return None
        return self._buf[self._head]

    def clear(self) -> None:
        """Drop everything (counters retained)."""
        self._buf = [None] * self.capacity
        self._head = self._tail = self._count = 0


@dataclass
class FluidRing:
    """Per-interval fluid model of a ring's occupancy.

    ``offer(in_rate, out_rate, dt)`` integrates arrivals minus service over
    the interval, capping occupancy at capacity (overflow counts as drops)
    and flooring at zero.  :meth:`delay_s` applies Little's law for the
    queueing latency component reported per interval.
    """

    capacity_packets: float
    occupancy: float = 0.0
    dropped: float = 0.0
    high_water: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_packets <= 0:
            raise ValueError("capacity must be positive")

    def offer(self, in_rate_pps: float, out_rate_pps: float, dt_s: float) -> float:
        """Advance one interval; returns the rate actually forwarded.

        The forwarded rate is bounded by what arrived plus what was queued;
        arrivals that overflow the ring within the interval are dropped.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if in_rate_pps < 0 or out_rate_pps < 0:
            raise ValueError("rates must be non-negative")
        arriving = in_rate_pps * dt_s
        serviceable = out_rate_pps * dt_s
        available = self.occupancy + arriving
        served = min(serviceable, available)
        backlog = available - served
        if backlog > self.capacity_packets:
            self.dropped += backlog - self.capacity_packets
            backlog = self.capacity_packets
        self.occupancy = backlog
        self.high_water = max(self.high_water, self.occupancy)
        return served / dt_s

    def delay_s(self, service_rate_pps: float) -> float:
        """Little's-law queueing delay at the current occupancy."""
        if service_rate_pps <= 0:
            return float("inf") if self.occupancy > 0 else 0.0
        return self.occupancy / service_rate_pps

    def reset(self) -> None:
        """Empty the ring and clear statistics."""
        self.occupancy = 0.0
        self.dropped = 0.0
        self.high_water = 0.0


def offer_many(rings, in_rates_pps, out_rates_pps, dt_s: float) -> np.ndarray:
    """Advance many :class:`FluidRing`\\ s one interval in one array pass.

    Semantically ``[r.offer(i, o, dt_s) for r, i, o in zip(...)]`` — the
    same float operations evaluated elementwise, so occupancy, drops and
    high-water marks land bit-identically — but the integration runs as
    a handful of vectorized ops, which is what the cluster kernel uses
    to keep per-chain ring bookkeeping off the Python hot path.
    Returns the forwarded rates, shape ``(R,)``.
    """
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    in_rates = np.asarray(in_rates_pps, dtype=np.float64)
    out_rates = np.asarray(out_rates_pps, dtype=np.float64)
    if np.any(in_rates < 0) or np.any(out_rates < 0):
        raise ValueError("rates must be non-negative")
    rings = list(rings)
    if in_rates.shape != (len(rings),) or out_rates.shape != (len(rings),):
        raise ValueError("need one in/out rate per ring")
    if not rings:
        return np.empty(0, dtype=np.float64)
    occupancy = np.asarray([r.occupancy for r in rings], dtype=np.float64)
    capacity = np.asarray([r.capacity_packets for r in rings], dtype=np.float64)
    available = occupancy + in_rates * dt_s
    served = np.minimum(out_rates * dt_s, available)
    backlog = available - served
    overflow = np.maximum(0.0, backlog - capacity)
    backlog = np.minimum(backlog, capacity)
    occ_list = backlog.tolist()
    over_list = overflow.tolist()
    for r, occ, over in zip(rings, occ_list, over_list):
        if over > 0.0:
            r.dropped += over
        r.occupancy = occ
        if occ > r.high_water:
            r.high_water = occ
    return served / dt_s
