"""A node hosting one or more NF chains.

The node owns the shared hardware — the LLC partitioned with
:class:`~repro.hw.cache.CacheAllocator`, the DVFS controller, the NIC —
and steps all resident chains through each control interval, accounting
for cross-chain LLC contention and producing both per-chain telemetry and
node-level power.

The Fig. 1 micro-benchmark (two chains C1/C2 sharing one socket under
different LLC splits) runs directly on this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.cache import CacheAllocator, contention_factor
from repro.hw.cpu import CpuFreqController, Governor
from repro.hw.power import EnergyMeter, ServerPowerModel
from repro.hw.server import ServerSpec
from repro.nfv.chain import ServiceChain
from repro.nfv.engine import (
    EngineParams,
    MultiChainTelemetry,
    PacketEngine,
    PollingMode,
    TelemetrySample,
    chain_stack,
)
from repro.nfv.knobs import DEFAULT_RANGES, KnobRanges, KnobSettings
from repro.nfv.rings import FluidRing


@dataclass
class HostedChain:
    """A chain deployed on a node with its current knob settings."""

    chain: ServiceChain
    knobs: KnobSettings
    rx_ring: FluidRing = field(default_factory=lambda: FluidRing(capacity_packets=4096))
    meter: EnergyMeter = field(default_factory=EnergyMeter)
    last_sample: TelemetrySample | None = None


class Node:
    """One NF-hosting server running an ONVM-style data plane."""

    def __init__(
        self,
        server: ServerSpec | None = None,
        *,
        params: EngineParams | None = None,
        polling: PollingMode = PollingMode.ADAPTIVE,
        governor: Governor = Governor.USERSPACE,
        ranges: KnobRanges = DEFAULT_RANGES,
        park_idle_cores: bool = True,
        cat_enabled: bool = True,
    ):
        self.server = server or ServerSpec()
        self.engine = PacketEngine(
            self.server,
            params,
            polling,
            cat_enabled=cat_enabled,
            park_idle_cores=park_idle_cores,
        )
        self.cache = CacheAllocator(self.server.llc)
        self.cpufreq = CpuFreqController(self.server.cpu, governor)
        self.ranges = ranges
        self.park_idle_cores = park_idle_cores
        self.meter = EnergyMeter()
        self._chains: dict[str, HostedChain] = {}
        self._last_grants: dict[str, int] | None = None
        #: Raw kernel telemetry of the most recent interval (array form
        #: of the per-chain samples), for array-native consumers.  It is
        #: ``None`` whenever the interval ran the scalar fallback — every
        #: first sight of a knob/deployment configuration, i.e. all of a
        #: knob-churning RL rollout — so callers must handle the cold
        #: path (or fold the sample dicts via ``aggregate_samples``).
        self.last_multi: MultiChainTelemetry | None = None
        # Compiled-kernel cache: the engine's load-independent chain plan
        # is reused until the deployment/knob generation (or the offered
        # packet sizes) change.
        self._config_gen = 0
        self._plan_key: tuple | None = None
        self._plan = None
        self._plan_candidate: tuple | None = None
        self._demand_key: tuple | None = None
        self._contention = 1.0

    # -- deployment --------------------------------------------------------

    def reset(self) -> None:
        """Return to the freshly-constructed state without reallocating.

        Undeploys every chain, clears the CAT partitioning and zeroes the
        energy meter, but keeps the (comparatively expensive) engine,
        power/DMA models and DVFS controller.  Environments call this
        between episodes instead of building a new :class:`Node`.
        """
        self._chains.clear()
        self.cache.clear()
        self.meter.reset()
        self._last_grants = None
        self.last_multi = None
        self._invalidate_plan()

    def _invalidate_plan(self) -> None:
        """Drop the compiled stepping plan (deployment or knobs changed)."""
        self._config_gen += 1
        self._plan_key = None
        self._plan = None
        self._demand_key = None

    @property
    def chains(self) -> dict[str, HostedChain]:
        """Chains currently hosted on this node."""
        return self._chains

    def deploy(self, chain: ServiceChain, knobs: KnobSettings | None = None) -> HostedChain:
        """Deploy a chain (idempotent per name) with initial knobs."""
        if chain.name in self._chains:
            raise ValueError(f"chain {chain.name!r} already deployed")
        hosted = HostedChain(chain=chain, knobs=(knobs or KnobSettings()).clamped(self.ranges, self.server.cpu))
        self._chains[chain.name] = hosted
        self._repartition_llc()
        self._invalidate_plan()
        return hosted

    def undeploy(self, name: str) -> None:
        """Remove a chain from the node."""
        if name not in self._chains:
            raise KeyError(f"no chain {name!r} on this node")
        del self._chains[name]
        if self._chains:
            self._repartition_llc()
        self._invalidate_plan()

    def apply_knobs(self, name: str, knobs: KnobSettings) -> KnobSettings:
        """Apply (clamped) knob settings to a chain; returns what stuck.

        Mirrors the real control path: frequency snaps to the DVFS
        ladder, LLC share becomes whole CAT ways, batch becomes integer.
        """
        if name not in self._chains:
            raise KeyError(f"no chain {name!r} on this node")
        applied = knobs.clamped(self.ranges, self.server.cpu)
        if applied != self._chains[name].knobs:
            self._chains[name].knobs = applied
            self._repartition_llc()
            self._invalidate_plan()
        return applied

    def _repartition_llc(self) -> None:
        """Re-run CAT allocation from the chains' llc_fraction knobs.

        When the requested fractions oversubscribe the allocatable ways,
        grants are scaled down proportionally — the controller's policy
        for resolving conflicting chain requests.
        """
        if not self._chains:
            return
        shares = {n: h.knobs.llc_fraction for n, h in self._chains.items()}
        grants = {n: self.cache.ways_for_fraction(f) for n, f in shares.items()}
        total_ways = sum(grants.values())
        if total_ways <= self.server.llc.allocatable_ways:
            # CAT grants whole ways, so nearby fractions collapse onto the
            # same way split; skip the CLOS rebuild when nothing moves.
            if grants == self._last_grants:
                return
            self._last_grants = grants
        else:
            self._last_grants = None
        if total_ways > self.server.llc.allocatable_ways:
            scale = self.server.llc.allocatable_ways / total_ways
            shares = {n: max(1e-6, f * scale) for n, f in shares.items()}
            # Rounding can still overshoot by a way; shave the largest.
            while (
                sum(self.cache.ways_for_fraction(f) for f in shares.values())
                > self.server.llc.allocatable_ways
            ):
                biggest = max(shares, key=lambda n: shares[n])
                shares[biggest] = max(1e-6, shares[biggest] * 0.9)
        self.cache.allocate(shares)

    def llc_bytes_for(self, name: str) -> float:
        """LLC capacity currently granted to a chain by CAT."""
        return self.cache.allocated_bytes(name)

    def contention_for(self, pkts: tuple[float, ...]) -> float:
        """Cross-chain contention from aggregate LLC demand at these frames.

        ``pkts`` holds one frame size per hosted chain, in deployment
        order.  The demand depends only on knobs, resident state and
        frame sizes — not on offered rates — so the factor is cached per
        (knob/deployment generation, frame sizes); :meth:`step_all` and
        the cluster kernel both price contention through this one path.
        """
        demand_key = (self._config_gen, pkts)
        if self._demand_key != demand_key:
            total_demand = 0.0
            for pkt, hosted in zip(pkts, self._chains.values()):
                total_demand += (
                    hosted.knobs.batch_size * pkt
                    + hosted.chain.total_state_bytes
                    + hosted.knobs.dma_bytes * 0.25
                )
            self._demand_key = demand_key
            self._contention = contention_factor(
                total_demand, self.server.llc.size_bytes
            )
        return self._contention

    # -- simulation --------------------------------------------------------

    def step(
        self,
        offered: dict[str, tuple[float, float]],
        dt_s: float = 1.0,
    ) -> dict[str, TelemetrySample]:
        """Advance one control interval with the chains' current knobs.

        Thin wrapper over :meth:`step_all` (the multi-chain kernel) kept
        for the established call sites; see there for semantics.
        """
        return self.step_all(offered, dt_s)

    def step_all(
        self,
        offered: dict[str, tuple[float, float]],
        dt_s: float = 1.0,
        *,
        knobs: dict[str, KnobSettings] | None = None,
    ) -> dict[str, TelemetrySample]:
        """Advance one control interval, stepping every chain in one pass.

        All hosted chains are evaluated through the vectorized
        multi-chain kernel (stacked chain profiles, shared
        LLC-repartition math, batched cache/DMA/power model
        evaluations): a cached
        :class:`~repro.nfv.engine.ChainKernelPlan` prices the interval
        when the knob/deployment configuration has been seen before,
        and a configuration on first sight runs the equivalent scalar
        per-chain loop; every path matches the scalar engine to
        <= 1 ulp.

        Parameters
        ----------
        offered:
            Mapping chain name -> (offered_pps, packet_bytes) for this
            interval.
        dt_s:
            Interval length in seconds.
        knobs:
            Optional per-chain knob settings applied (clamped, CAT
            repartitioned) before the interval runs — the joint-action
            path of the multi-chain environments.

        Returns per-chain telemetry.  Node power is computed once from
        the union of busy cores and attributed to chains proportionally
        to the cycles they consumed.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if knobs:
            for name, settings in knobs.items():
                self.apply_knobs(name, settings)
        unknown = set(offered) - set(self._chains)
        if unknown:
            raise KeyError(f"offered traffic for unknown chains: {sorted(unknown)}")

        loads: list[float] = []
        pkts: list[float] = []
        for name in self._chains:
            pps, pkt = offered.get(name, (0.0, 1518.0))
            loads.append(pps)
            pkts.append(pkt)
        pkts_t = tuple(pkts)

        contention = self.contention_for(pkts_t)

        # One kernel pass: per-chain physics without power.  The ONVM
        # Rx/Tx infra threads exist once per node, so their
        # busy/allocated contribution (which each engine sample includes)
        # is de-duplicated below.
        params = self.engine.params
        infra_util = (
            params.infra_util_poll
            if self.engine.polling.value == "poll"
            else params.infra_util_adaptive
        )
        infra_busy = params.infra_cores * infra_util
        # Kernel dispatch.  Compiling the load-independent plan only pays
        # off when the (deployment, knobs, frame sizes) configuration is
        # stepped more than once, so a plan is compiled the second time
        # a configuration shows up; an unseen configuration runs through
        # the scalar per-chain loop (bit-identical, and cheaper for the
        # knob-churning RL training loops that never revisit a setting).
        plan_key = (self._config_gen, pkts_t, contention)
        multi: MultiChainTelemetry | None = None
        if not self._chains:
            pass  # nothing to stack; the loop below is a no-op
        elif self._plan_key == plan_key:
            multi = self._plan.step(loads, dt_s, include_power=False)
        elif self._plan_candidate == plan_key:
            hosted_list = list(self._chains.values())
            stack = chain_stack(
                tuple(h.chain for h in hosted_list),
                pkts_t,
                self.server.llc.line_bytes,
            )
            self._plan = self.engine.compile_chains(
                stack,
                [h.knobs for h in hosted_list],
                llc_bytes=[self.cache.allocated_bytes(n) for n in self._chains],
                contention=contention,
            )
            self._plan_key = plan_key
            multi = self._plan.step(loads, dt_s, include_power=False)
        else:
            self._plan_candidate = plan_key

        samples: dict[str, TelemetrySample] = {}
        busy_cores_total = infra_busy
        allocated_total = params.infra_cores
        # Lazy per-NF rows: equal to (and materializing into) the eager
        # NFTelemetry lists on first access, skipped entirely by the
        # consumers that only read chain-level scalars.
        chain_samples = (
            multi.samples(lazy_per_nf=True) if multi is not None else None
        )
        for i, (name, hosted) in enumerate(self._chains.items()):
            if chain_samples is not None:
                sample = chain_samples[i]
            else:
                sample = self.engine.step(
                    hosted.chain,
                    hosted.knobs,
                    loads[i],
                    pkts[i],
                    dt_s,
                    llc_bytes=self.cache.allocated_bytes(name),
                    contention=contention,
                    include_power=False,
                )
            # Route through the rx fluid ring for drop/latency accounting.
            hosted.rx_ring.offer(
                min(loads[i], sample.achieved_pps + sample.dropped_pps),
                max(sample.achieved_pps, 1.0),
                dt_s,
            )
            samples[name] = sample
            busy_cores_total += max(0.0, sample.cpu_cores_busy - infra_busy)
            allocated_total += hosted.knobs.cpu_share * len(hosted.chain)

        # Node power: one Fan-model evaluation over the union of chains.
        freqs = [h.knobs.cpu_freq_ghz for h in self._chains.values()]
        freq = sum(freqs) / len(freqs) if freqs else self.server.cpu.base_freq_ghz
        power_w = self.engine.node_power(busy_cores_total, allocated_total, freq)
        energy_j = power_w * dt_s
        self.meter.record(power_w, dt_s, sum(s.achieved_pps * dt_s for s in samples.values()))

        # Attribute power to chains by consumed cycles.
        weights = {
            name: max(s.cpu_cores_busy, 1e-9) for name, s in samples.items()
        }
        wsum = sum(weights.values())
        for i, (name, sample) in enumerate(samples.items()):
            share = weights[name] / wsum if wsum > 0 else 1.0 / len(samples)
            sample.power_w = power_w * share
            sample.energy_j = energy_j * share
            if multi is not None:
                # Mirror the attribution into the kernel arrays so
                # aggregate consumers (the multi-chain env) see priced
                # telemetry.
                multi.power_w[i] = sample.power_w
                multi.energy_j[i] = sample.energy_j
            hosted = self._chains[name]
            hosted.meter.record(sample.power_w, dt_s, sample.achieved_pps * dt_s)
            hosted.last_sample = sample
        # Stale kernel telemetry must never outlive its interval.
        self.last_multi = multi
        return samples

    def node_power_w(self) -> float:
        """Most recent node-level average power (0 before any step)."""
        return self.meter.average_power()
