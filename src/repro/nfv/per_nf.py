"""Per-NF knob control — the paper's full Eq. (7) action space.

Eq. (7) defines the action set *per NF*: ``A_i = {c_i, cf_i, llc_i, b_i,
bs_i}`` — every network function in a chain gets its own CPU share, core
frequency (per-core DVFS), LLC share, DMA buffer and batch size.  The
chain-level controller (one knob vector per chain) is the common
deployment mode and what the §5 experiments sweep, but the fine-grained
space matters for heterogeneous chains: a NAT needs neither the IDS's
cores nor its cache.

:class:`PerNFEngine` extends the physics to a list of knob settings (one
per NF):

* each NF runs at its own share and DVFS frequency;
* each NF has its own CLOS: LLC fractions are normalized if the chain
  oversubscribes the allocatable ways (the controller's conflict rule);
* the DMA buffer is physically the chain's rx ring, so only the first
  NF's ``dma_mb`` is meaningful and is used for delivery/DDIO;
* per-NF batch sizes set each stage's amortization independently;
* node power uses the busy-weighted mean frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hw.cache import capacity_miss_ratio, prefetch_efficiency
from repro.nfv.chain import ServiceChain
from repro.nfv.engine import NFTelemetry, PacketEngine, PollingMode, TelemetrySample
from repro.nfv.knobs import KnobSettings
from repro.utils.units import pps_to_gbps


class PerNFEngine(PacketEngine):
    """Physics for chains whose NFs carry individual knob settings."""

    def per_nf_llc_bytes(self, chain: ServiceChain, knobs: list[KnobSettings]) -> list[float]:
        """Per-NF CLOS capacities from the llc_fraction knobs.

        Fractions are normalized down proportionally when their sum
        exceeds 1.0 (the CAT allocator cannot oversubscribe ways).
        """
        if len(knobs) != len(chain):
            raise ValueError(
                f"need one KnobSettings per NF: {len(knobs)} != {len(chain)}"
            )
        llc = self.server.llc
        allocatable = llc.way_bytes * llc.allocatable_ways
        fracs = np.asarray([k.llc_fraction for k in knobs], dtype=np.float64)
        total = fracs.sum()
        if total > 1.0:
            fracs = fracs / total
        return [float(f * allocatable) for f in fracs]

    def nf_cost(
        self,
        chain: ServiceChain,
        nf_index: int,
        knobs: KnobSettings,
        packet_bytes: float,
        *,
        llc_bytes: float,
        contention: float = 1.0,
    ) -> tuple[float, float]:
        """(cycles/packet, misses/packet) for one NF with its own knobs.

        Unlike the chain-level model, the working set here is *this NF's*
        state plus its in-flight batch — each NF owns a CLOS, so it no
        longer competes with its siblings' state.
        """
        nf = chain.nfs[nf_index]
        llc = self.server.llc
        p = self.params

        pf = prefetch_efficiency(knobs.batch_size)
        pen_eff = llc.miss_penalty_cycles * (1.0 - pf)
        hit_eff = llc.hit_cycles * (1.0 - pf)

        ws = nf.state_bytes + knobs.batch_size * packet_bytes
        base_miss = capacity_miss_ratio(ws, llc_bytes, locality=p.cache_locality)
        p_miss = float(min(1.0, base_miss * contention))

        cycles = nf.cycles_for_packet(packet_bytes)
        cycles += p.ring_call_cycles / knobs.batch_size
        cycles += p.mbuf_cycles / math.sqrt(knobs.batch_size)
        cycles += nf.state_lines_touched * p_miss * pen_eff
        misses = nf.state_lines_touched * p_miss

        touched = nf.touched_lines(packet_bytes, llc.line_bytes)
        if nf_index == 0:
            p_hit = self.dma_model.llc_spill_hit_ratio(knobs.dma_bytes, llc_bytes)
            p_hit = float(max(0.0, p_hit * (1.0 - p_miss * 0.5)))
        else:
            p_hit = 1.0 - p_miss
        cycles += touched * p.mem_factor * (p_hit * hit_eff + (1.0 - p_hit) * pen_eff)
        misses += touched * (1.0 - p_hit)

        cycles += p.cold_lines_per_batch * pen_eff / knobs.batch_size
        misses += p.cold_lines_per_batch / knobs.batch_size
        if nf_index > 0:
            cycles += p.inter_nf_handoff_cycles
        return float(cycles), float(misses)

    def step_per_nf(
        self,
        chain: ServiceChain,
        knobs: list[KnobSettings],
        offered_pps: float,
        packet_bytes: float,
        dt_s: float = 1.0,
        *,
        contention: float | None = None,
    ) -> TelemetrySample:
        """One control interval with a knob vector per NF."""
        if offered_pps < 0 or packet_bytes <= 0 or dt_s <= 0:
            raise ValueError("offered rate/packet size/dt must be valid")
        llc_alloc = self.per_nf_llc_bytes(chain, knobs)
        eff_contention = contention if contention is not None else (
            1.0 if self.cat_enabled else self.params.no_cat_contention
        )

        nic_cap = self.server.nic.max_pps(packet_bytes)
        admitted = min(offered_pps, nic_cap)
        delivery = self.dma_model.delivery_ratio(
            knobs[0].dma_bytes, packet_bytes, admitted
        )
        delivered = admitted * delivery

        cpps: list[float] = []
        misses: list[float] = []
        rates: list[float] = []
        for i in range(len(chain)):
            cpp, m = self.nf_cost(
                chain, i, knobs[i], packet_bytes,
                llc_bytes=llc_alloc[i], contention=eff_contention,
            )
            cpps.append(cpp)
            misses.append(m)
            rates.append(knobs[i].cpu_share * knobs[i].cpu_freq_ghz * 1e9 / cpp)
        achieved = min(delivered, min(rates))

        # Receive livelock on the first NF.
        f0 = knobs[0].cpu_freq_ghz * 1e9
        c0 = knobs[0].cpu_share * f0
        rx = self.params.rx_drop_cycles
        if delivered * cpps[0] > c0 and cpps[0] > rx:
            achieved = min(achieved, max(0.0, (c0 - delivered * rx) / (cpps[0] - rx)))

        per_nf: list[NFTelemetry] = []
        busy = 0.0
        busy_freq = 0.0
        for i, nf in enumerate(chain.nfs):
            cap = knobs[i].cpu_share * knobs[i].cpu_freq_ghz * 1e9
            work = achieved * cpps[i]
            if i == 0:
                work += max(0.0, delivered - achieved) * rx
            util = min(1.0, work / cap) if cap > 0 else 0.0
            if self.polling == PollingMode.POLL:
                util = 1.0
            else:
                util = min(1.0, util + self.params.adaptive_poll_overhead)
            per_nf.append(
                NFTelemetry(nf.name, cpps[i], rates[i], util, misses[i])
            )
            busy += knobs[i].cpu_share * util
            busy_freq += knobs[i].cpu_share * util * knobs[i].cpu_freq_ghz

        infra_util = (
            self.params.infra_util_poll
            if self.polling == PollingMode.POLL
            else self.params.infra_util_adaptive
        )
        infra_busy = self.params.infra_cores * infra_util
        allocated = sum(k.cpu_share for k in knobs) + self.params.infra_cores
        total_busy = busy + infra_busy
        mean_freq = busy_freq / busy if busy > 0 else float(
            np.mean([k.cpu_freq_ghz for k in knobs])
        )
        power_w = self.node_power(total_busy, allocated, mean_freq)
        energy_j = power_w * dt_s

        total_misses = achieved * float(sum(misses))
        freq_hz = np.asarray([k.cpu_freq_ghz for k in knobs]) * 1e9
        proc_s = float(np.sum(np.asarray(cpps) / freq_hz))
        fill_s = knobs[0].batch_size / max(achieved, 1.0)
        peak = min(1.0, achieved / min(rates)) if min(rates) > 0 else 1.0
        queue_s = proc_s * peak / max(1e-6, 1.0 - min(peak, 0.999))

        return TelemetrySample(
            dt_s=dt_s,
            offered_pps=offered_pps,
            achieved_pps=achieved,
            packet_bytes=packet_bytes,
            throughput_gbps=pps_to_gbps(achieved, packet_bytes),
            llc_miss_rate_per_s=total_misses,
            cpu_utilization=min(1.0, total_busy / allocated),
            cpu_cores_busy=total_busy,
            power_w=power_w,
            energy_j=energy_j,
            dropped_pps=max(0.0, offered_pps - achieved),
            latency_s=fill_s + proc_s + queue_s,
            arrival_rate_pps=offered_pps,
            per_nf=per_nf,
        )


@dataclass(frozen=True)
class PerNFKnobVector:
    """Helpers between flat vectors and per-NF knob lists."""

    n_nfs: int

    def __post_init__(self) -> None:
        if self.n_nfs < 1:
            raise ValueError("need at least one NF")

    @property
    def dim(self) -> int:
        """Flat action dimensionality: 5 knobs per NF."""
        return 5 * self.n_nfs

    def split(self, action: np.ndarray, space) -> list[KnobSettings]:
        """Map a flat [-1,1]^(5n) action to per-NF knob settings.

        ``space`` is a :class:`repro.core.knobs.KnobSpace` applied to each
        5-slice independently.
        """
        action = np.asarray(action, dtype=np.float64)
        if action.shape != (self.dim,):
            raise ValueError(f"expected action shape ({self.dim},), got {action.shape}")
        return [
            space.to_settings(action[5 * i : 5 * i + 5]) for i in range(self.n_nfs)
        ]

    def join(self, knobs: list[KnobSettings], space) -> np.ndarray:
        """Inverse of :meth:`split`."""
        if len(knobs) != self.n_nfs:
            raise ValueError(f"need {self.n_nfs} knob settings, got {len(knobs)}")
        return np.concatenate([space.to_action(k) for k in knobs])
