"""Multi-node deployment.

The paper's testbed is six nodes: three MoonGen traffic sources and three
NF hosts, each NF host running a 3-NF chain (§5).  :class:`Cluster` wires
traffic nodes to NF-host controllers, steps them in lockstep, and
aggregates cluster-wide telemetry.  This is also the layer that supports
flow-path-aware chain consolidation ("consolidates the VNFs based on the
flow path", §2): chains that share a flow path can be co-located on one
node to share the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.server import ServerSpec, testbed_cluster
from repro.nfv.chain import ServiceChain, default_chain
from repro.nfv.cluster_kernel import ClusterKernel
from repro.nfv.controller import OnvmController
from repro.nfv.engine import TelemetrySample
from repro.nfv.node import Node
from repro.traffic.generators import ConstantRateGenerator, TrafficGenerator
from repro.utils.rng import RngLike, as_generator, spawn


@dataclass
class ClusterSample:
    """Aggregated cluster telemetry for one interval."""

    per_chain: dict[str, TelemetrySample]
    total_throughput_gbps: float
    total_energy_j: float
    mean_cpu_utilization: float

    @property
    def energy_efficiency(self) -> float:
        """Cluster-level T/E in Gbps per kJ."""
        if self.total_energy_j <= 0:
            return 0.0
        return self.total_throughput_gbps / (self.total_energy_j / 1e3)


class Cluster:
    """A set of NF-host nodes stepped in lockstep.

    Intervals run through the cluster-wide stepping kernel: every node's
    hosted chains are priced in one fused
    :class:`~repro.nfv.cluster_kernel.ClusterKernel` pass (per-node
    ``step_all`` remains the bit-identical fallback for heterogeneous
    hardware or mixed interval lengths).
    """

    def __init__(self, controllers: list[OnvmController]):
        if not controllers:
            raise ValueError("cluster needs at least one controller")
        names: list[str] = []
        for ctrl in controllers:
            names.extend(ctrl.bindings.keys())
        if len(names) != len(set(names)):
            raise ValueError("chain names must be unique across the cluster")
        self.controllers = controllers
        self.kernel = ClusterKernel([ctrl.node for ctrl in controllers])

    @property
    def chain_names(self) -> list[str]:
        """All chain names across nodes."""
        out: list[str] = []
        for ctrl in self.controllers:
            out.extend(ctrl.bindings.keys())
        return out

    def controller_for(self, chain_name: str) -> OnvmController:
        """The controller hosting a chain."""
        for ctrl in self.controllers:
            if chain_name in ctrl.bindings:
                return ctrl
        raise KeyError(f"no node hosts chain {chain_name!r}")

    def step(self, dt_s: float | None = None) -> ClusterSample:
        """Advance every node one interval; aggregate telemetry.

        All nodes sharing one interval length are priced in a single
        fused kernel pass; controllers with differing intervals (and
        ``dt_s=None``) fall back to per-controller stepping.
        """
        per_chain: dict[str, TelemetrySample] = {}
        dts = {
            dt_s if dt_s is not None else ctrl.interval_s
            for ctrl in self.controllers
        }
        if len(dts) == 1:
            dt = dts.pop()
            offered: dict[str, tuple[float, float]] = {}
            for ctrl in self.controllers:
                offered.update(ctrl.draw_offered(dt))
            samples = self.kernel.step(offered, dt)
            for ctrl in self.controllers:
                sub = {name: samples[name] for name in ctrl.bindings}
                ctrl.finish_interval(sub, dt)
                per_chain.update(sub)
        else:
            for ctrl in self.controllers:
                per_chain.update(ctrl.run_interval(dt_s))
        total_t = sum(s.throughput_gbps for s in per_chain.values())
        total_e = sum(s.energy_j for s in per_chain.values())
        utils = [s.cpu_utilization for s in per_chain.values()]
        return ClusterSample(
            per_chain=per_chain,
            total_throughput_gbps=total_t,
            total_energy_j=total_e,
            mean_cpu_utilization=float(np.mean(utils)) if utils else 0.0,
        )

    @staticmethod
    def testbed(
        n_hosts: int = 3,
        *,
        rng: RngLike = None,
        line_gbps: float = 10.0,
        interval_s: float = 1.0,
    ) -> "Cluster":
        """The paper's deployment: three NF hosts, each a 3-NF chain.

        The other three testbed nodes are the MoonGen sources, represented
        by each chain's line-rate generator.
        """
        streams = spawn(as_generator(rng), n_hosts)
        controllers = []
        for i in range(n_hosts):
            node = Node(ServerSpec(name=f"host{i}"))
            ctrl = OnvmController(node, interval_s=interval_s, rng=streams[i])
            chain = default_chain(f"chain{i}")
            gen = ConstantRateGenerator.line_rate(line_gbps)
            ctrl.add_chain(chain, gen)
            controllers.append(ctrl)
        return Cluster(controllers)


def consolidation_plan(
    chains: list[ServiceChain],
    flow_paths: dict[str, list[str]],
    n_nodes: int,
    *,
    capacity: int | None = None,
) -> dict[str, int]:
    """Assign chains to nodes, co-locating chains that share flow paths.

    GreenNFV "consolidates the VNFs based on the flow path and minimizes
    the cache eviction" — chains processing the same flows should share a
    socket so packets stay LLC-resident across chains.  We greedily group
    chains by overlapping flow paths, then round-robin groups over nodes.

    Parameters
    ----------
    chains:
        Chains to place (anything with a unique ``name``).
    flow_paths:
        chain name -> list of flow identifiers it processes.
    n_nodes:
        Available NF-host nodes.
    capacity:
        Optional per-node chain limit.  Groups larger than the limit are
        split; when a whole (sub-)group no longer fits on any node its
        members are placed individually — co-location is a preference,
        never a reason to oversubscribe a node.  Raises when the chains
        cannot fit at all (``len(chains) > capacity * n_nodes``).

    Returns chain name -> node index.
    """
    if n_nodes <= 0:
        raise ValueError("need at least one node")
    if capacity is not None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if len(chains) > capacity * n_nodes:
            raise ValueError(
                f"{len(chains)} chains cannot fit on {n_nodes} nodes "
                f"of capacity {capacity}"
            )
    names = [c.name for c in chains]
    if len(names) != len(set(names)):
        raise ValueError("duplicate chain names")
    # Union-find over chains sharing any flow id.
    parent = {n: n for n in names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    by_flow: dict[str, list[str]] = {}
    for name in names:
        for flow in flow_paths.get(name, []):
            by_flow.setdefault(flow, []).append(name)
    for members in by_flow.values():
        for other in members[1:]:
            union(members[0], other)

    groups: dict[str, list[str]] = {}
    for name in names:
        groups.setdefault(find(name), []).append(name)

    # Largest groups first so co-located sets land on the emptiest node.
    # With a capacity, oversized groups are pre-split into capacity-sized
    # slices, and a slice that fits on no single node falls back to
    # per-member placement (always possible: total fit is checked above).
    assignment: dict[str, int] = {}
    loads = [0] * n_nodes
    placeable: list[list[str]] = []
    for _, members in sorted(groups.items(), key=lambda kv: -len(kv[1])):
        if capacity is None or len(members) <= capacity:
            placeable.append(members)
        else:
            placeable.extend(
                members[i : i + capacity] for i in range(0, len(members), capacity)
            )

    def fits(node: int, count: int) -> bool:
        return capacity is None or loads[node] + count <= capacity

    for members in placeable:
        rooms = [n for n in range(n_nodes) if fits(n, len(members))]
        if rooms:
            target = min(rooms, key=lambda n: (loads[n], n))
            for m in members:
                assignment[m] = target
            loads[target] += len(members)
        else:
            for m in members:
                target = min(
                    (n for n in range(n_nodes) if fits(n, 1)),
                    key=lambda n: (loads[n], n),
                )
                assignment[m] = target
                loads[target] += 1
    return assignment
