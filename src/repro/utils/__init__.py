"""Shared utilities: RNG streams, streaming stats, units, table rendering."""

from repro.utils.rng import StreamFactory, as_generator, spawn
from repro.utils.stats import (
    EWMA,
    DoubleExponentialSmoothing,
    RunningStats,
    geometric_mean,
    rolling_mean,
)
from repro.utils.tables import ExperimentReport, render_series, render_table
from repro.utils.units import (
    ETH_OVERHEAD_BYTES,
    MAX_PACKET_BYTES,
    MIN_PACKET_BYTES,
    bps_to_gbps,
    bytes_to_mb,
    gbps_to_bps,
    gbps_to_pps,
    joules_per_mpacket,
    line_rate_pps,
    mb_to_bytes,
    mpps_to_pps,
    pps_to_gbps,
    pps_to_mpps,
)

__all__ = [
    "StreamFactory",
    "as_generator",
    "spawn",
    "EWMA",
    "DoubleExponentialSmoothing",
    "RunningStats",
    "geometric_mean",
    "rolling_mean",
    "ExperimentReport",
    "render_series",
    "render_table",
    "ETH_OVERHEAD_BYTES",
    "MAX_PACKET_BYTES",
    "MIN_PACKET_BYTES",
    "bps_to_gbps",
    "bytes_to_mb",
    "gbps_to_bps",
    "gbps_to_pps",
    "joules_per_mpacket",
    "line_rate_pps",
    "mb_to_bytes",
    "mpps_to_pps",
    "pps_to_gbps",
    "pps_to_mpps",
]
