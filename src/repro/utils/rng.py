"""Deterministic random-number management.

Every stochastic component in the reproduction (traffic generators, RL
exploration noise, replay sampling, network init) draws from an explicit
:class:`numpy.random.Generator`.  This module provides helpers to derive
independent child streams from a single experiment seed so that

* the same seed reproduces an experiment bit-for-bit, and
* components do not perturb each other's streams when one of them changes
  how many variates it consumes (a classic reproducibility bug with a
  single shared global RNG).

The derivation uses :class:`numpy.random.SeedSequence` spawning, which is
designed exactly for this purpose.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

RngLike = np.random.Generator | int | None


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` for OS-entropy seeding.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    When ``rng`` is a generator, children are seeded from its bit
    generator's seed sequence; when it is a seed (or None) a fresh
    :class:`~numpy.random.SeedSequence` is created first.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(rng, np.random.Generator):
        seq = rng.bit_generator.seed_seq
        if not isinstance(seq, np.random.SeedSequence):
            # Generators built around a bare bit generator (e.g. wrapping
            # a legacy RandomState's) expose no seed sequence; draw one
            # deterministic variate to seed a fresh sequence instead.
            seq = np.random.SeedSequence(int(rng.integers(2**63)))
    else:
        seq = np.random.SeedSequence(rng)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def private_stream(rng: RngLike) -> np.random.Generator:
    """A generator private to one component, never aliasing the input.

    Integer seeds and ``None`` behave exactly like :func:`as_generator`
    (a fresh generator per call).  A passed :class:`~numpy.random.Generator`
    is never stored as-is: a child stream is spawned from it instead, so
    two components handed the *same* generator instance can never
    interleave draws on shared state — the silent cross-component RNG
    sharing that makes two same-config runs with different seeds
    impossible to tell apart from each other's perturbations.  Spawning
    advances the parent's spawn counter, so successive components derive
    distinct, deterministically reproducible streams.
    """
    if isinstance(rng, np.random.Generator):
        return spawn(rng, 1)[0]
    return as_generator(rng)


class StreamFactory:
    """Named child-stream factory for a whole experiment.

    Components ask for streams by name (``factory.stream("traffic")``);
    the same (seed, name) pair always yields an identically seeded
    generator, regardless of request order.  Names are hashed into the
    spawn key, so adding a new component never reseeds existing ones.
    """

    def __init__(self, seed: int | None = 0):
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int | None:
        """The experiment-level seed this factory derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._cache:
            # Stable 64-bit key from the name; independent of request order.
            key = np.uint64(abs(hash_name(name)))
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(int(key),)
            )
            self._cache[name] = np.random.default_rng(child)
        return self._cache[name]

    def streams(self, *names: str) -> Iterator[np.random.Generator]:
        """Yield one generator per name (convenience for unpacking)."""
        for name in names:
            yield self.stream(name)


def hash_name(name: str) -> int:
    """Order-independent stable 64-bit hash of a stream name.

    Python's builtin ``hash`` is salted per-process for strings, so we use
    FNV-1a instead to keep (seed, name) -> stream mappings reproducible
    across runs and machines.
    """
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
