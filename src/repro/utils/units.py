"""Unit conversions used throughout the GreenNFV reproduction.

The paper mixes several unit systems: packet rates in Mpps (million packets
per second), link throughput in Gbps, cache sizes in MB/KB, energy in
Joules/kJ and in Joules-per-million-packets ("Energy/MP" in Fig. 1 and
Fig. 4).  Keeping conversions in one module avoids scattering magic
constants across the simulator.

All wire throughput figures account for Ethernet framing overhead
(preamble + IFG + FCS) the same way line-rate generators such as MoonGen
report them: a 10 GbE link carries at most ``LINE_RATE_BPS`` bits of frame
data per second, and each packet occupies ``packet_size + ETH_OVERHEAD``
bytes on the wire.
"""

from __future__ import annotations

GIGA = 1e9
MEGA = 1e6
KILO = 1e3

#: Bytes of per-packet overhead on the wire: 7 B preamble + 1 B SFD +
#: 12 B inter-frame gap.  The FCS is already included in the conventional
#: frame sizes 64..1518 the paper quotes, so it is not added again; this
#: yields the canonical 14.88 Mpps line rate for 64 B frames at 10 GbE.
ETH_OVERHEAD_BYTES = 20

#: Minimum / maximum Ethernet frame sizes used in the paper's experiments.
MIN_PACKET_BYTES = 64
MAX_PACKET_BYTES = 1518

BITS_PER_BYTE = 8


def gbps_to_bps(gbps: float) -> float:
    """Convert gigabits-per-second to bits-per-second."""
    return gbps * GIGA


def bps_to_gbps(bps: float) -> float:
    """Convert bits-per-second to gigabits-per-second."""
    return bps / GIGA


def mpps_to_pps(mpps: float) -> float:
    """Convert million-packets-per-second to packets-per-second."""
    return mpps * MEGA


def pps_to_mpps(pps: float) -> float:
    """Convert packets-per-second to million-packets-per-second."""
    return pps / MEGA


def mb_to_bytes(mb: float) -> float:
    """Convert megabytes to bytes (decimal MB, as Intel CAT docs use)."""
    return mb * MEGA


def bytes_to_mb(n: float) -> float:
    """Convert bytes to megabytes."""
    return n / MEGA


def pps_to_gbps(pps: float, packet_bytes: float, *, wire: bool = True) -> float:
    """Packet rate -> link throughput in Gbps.

    Parameters
    ----------
    pps:
        Packets per second.
    packet_bytes:
        Frame size in bytes (64..1518 in the paper).
    wire:
        If True, include Ethernet preamble/IFG/FCS overhead, matching how
        MoonGen reports line rate.  If False, count only frame payload bits.
    """
    per_packet = packet_bytes + (ETH_OVERHEAD_BYTES if wire else 0)
    return bps_to_gbps(pps * per_packet * BITS_PER_BYTE)


def gbps_to_pps(gbps: float, packet_bytes: float, *, wire: bool = True) -> float:
    """Link throughput in Gbps -> packet rate, inverse of :func:`pps_to_gbps`."""
    per_packet = packet_bytes + (ETH_OVERHEAD_BYTES if wire else 0)
    return gbps_to_bps(gbps) / (per_packet * BITS_PER_BYTE)


def joules_per_mpacket(total_joules: float, total_packets: float) -> float:
    """Energy-per-million-packets, the "Energy/MP" metric of Figs. 1 and 4.

    Returns ``inf`` when no packets were processed, which callers treat as
    "worst possible efficiency".
    """
    if total_packets <= 0:
        return float("inf")
    return total_joules / (total_packets / MEGA)


def line_rate_pps(line_rate_gbps: float, packet_bytes: float) -> float:
    """Maximum packet rate a link sustains for a given frame size.

    A 10 GbE link with 64 B frames tops out at ~14.88 Mpps; with 1518 B
    frames at ~0.81 Mpps.  These are the MoonGen line-rate numbers the
    paper's traffic generators target.
    """
    return gbps_to_pps(line_rate_gbps, packet_bytes, wire=True)
