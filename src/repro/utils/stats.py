"""Streaming statistics primitives.

These are the small numerical tools the controllers and experiment
harnesses share:

* :class:`RunningStats` — Welford-style streaming mean/variance, used to
  normalize RL observations without storing history.
* :class:`EWMA` — exponentially weighted moving average, used by the
  heuristic controller for smoothing noisy per-interval readings.
* :class:`DoubleExponentialSmoothing` — the DES traffic predictor used by
  the EE-Pstate baseline (Iqbal & John 2012 use simple predictors such as
  DES for traffic prediction; the paper compares against that scheme).
* :func:`rolling_mean` — vectorized trailing-window smoothing used when
  rendering training curves (Figs. 6-8 plot smoothed series).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class RunningStats:
    """Numerically stable streaming mean / variance (Welford's algorithm).

    Supports scalar or fixed-shape vector observations.  ``std`` is floored
    at ``eps`` so that downstream normalization never divides by zero.
    """

    def __init__(self, shape: tuple[int, ...] = (), eps: float = 1e-8):
        self._shape = shape
        self._eps = float(eps)
        self._count = 0
        self._mean = np.zeros(shape, dtype=np.float64)
        self._m2 = np.zeros(shape, dtype=np.float64)

    @property
    def count(self) -> int:
        """Number of samples seen so far."""
        return self._count

    @property
    def mean(self) -> np.ndarray:
        """Current sample mean (zeros before any update)."""
        return self._mean.copy()

    @property
    def var(self) -> np.ndarray:
        """Current (population) variance; zeros until two samples arrive."""
        if self._count < 2:
            return np.zeros(self._shape, dtype=np.float64)
        return self._m2 / self._count

    @property
    def std(self) -> np.ndarray:
        """Standard deviation floored at ``eps``."""
        return np.maximum(np.sqrt(self.var), self._eps)

    def update(self, x: np.ndarray | float) -> None:
        """Fold one observation into the running moments."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self._shape:
            raise ValueError(f"expected shape {self._shape}, got {x.shape}")
        self._count += 1
        delta = x - self._mean
        self._mean = self._mean + delta / self._count
        self._m2 = self._m2 + delta * (x - self._mean)

    def normalize(self, x: np.ndarray | float) -> np.ndarray:
        """Return ``(x - mean) / std`` with the current moments."""
        x = np.asarray(x, dtype=np.float64)
        return (x - self._mean) / self.std


class EWMA:
    """Exponentially weighted moving average with bias correction.

    ``alpha`` is the weight of the newest sample.  Before the first update
    :attr:`value` is ``None``; afterwards it tracks the debiased average.
    """

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._raw = 0.0
        self._weight = 0.0
        self._n = 0

    @property
    def value(self) -> float | None:
        """Debiased average, or None before any sample."""
        if self._n == 0:
            return None
        return self._raw / self._weight

    def update(self, x: float) -> float:
        """Fold in a sample and return the updated average."""
        self._n += 1
        self._raw = (1 - self.alpha) * self._raw + self.alpha * float(x)
        self._weight = (1 - self.alpha) * self._weight + self.alpha
        return self._raw / self._weight


@dataclass
class DoubleExponentialSmoothing:
    """Holt's linear-trend (double exponential smoothing) predictor.

    The EE-Pstate baseline predicts the next-interval packet arrival rate
    and picks a P-state by thresholding the prediction.  DES maintains a
    level ``s`` and a trend ``b``:

    .. math::
        s_t = \\alpha x_t + (1-\\alpha)(s_{t-1} + b_{t-1}) \\\\
        b_t = \\beta (s_t - s_{t-1}) + (1-\\beta) b_{t-1}

    and forecasts ``s_t + k b_t`` for horizon ``k``.
    """

    alpha: float = 0.5
    beta: float = 0.3
    _level: float | None = field(default=None, repr=False)
    _trend: float = field(default=0.0, repr=False)
    _prev_x: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")

    @property
    def initialized(self) -> bool:
        """True once two samples have been observed (trend defined)."""
        return self._level is not None and self._prev_x is not None

    def update(self, x: float) -> None:
        """Observe one sample of the series."""
        x = float(x)
        if self._level is None:
            self._level = x
            self._prev_x = x
            return
        if self._prev_x is not None and self._trend == 0.0 and self._prev_x == self._level:
            # Second sample: initialize trend from the first difference,
            # the standard DES bootstrap.
            self._trend = x - self._level
        prev_level = self._level
        self._level = self.alpha * x + (1 - self.alpha) * (self._level + self._trend)
        self._trend = self.beta * (self._level - prev_level) + (1 - self.beta) * self._trend
        self._prev_x = x

    def forecast(self, horizon: int = 1) -> float:
        """Predict the series ``horizon`` steps ahead (>=1)."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if self._level is None:
            return 0.0
        return self._level + horizon * self._trend


def rolling_mean(series: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window rolling mean with a warmup ramp.

    Output has the same length as the input; position ``i`` averages
    ``series[max(0, i-window+1) : i+1]``.  Used to smooth the episode
    curves when reproducing Figs. 6-8.
    """
    series = np.asarray(series, dtype=np.float64)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if series.ndim != 1:
        raise ValueError("rolling_mean expects a 1-D series")
    if series.size == 0:
        return series.copy()
    csum = np.cumsum(series)
    out = np.empty_like(series)
    w = min(window, series.size)
    out[:w] = csum[:w] / np.arange(1, w + 1)
    if series.size > w:
        out[w:] = (csum[w:] - csum[:-w]) / w
    return out


def geometric_mean(values: np.ndarray | list[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(math.exp(np.mean(np.log(arr))))
