"""ASCII table / series rendering for the benchmark harness.

Every benchmark prints the same rows or series the paper's figure shows,
in a plain-text table that is easy to diff against EXPERIMENTS.md.  This
module keeps the formatting in one place so all benches look alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def format_value(v: Any, precision: int = 3) -> str:
    """Render one table cell: floats to fixed precision, rest via str."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if abs(v) >= 1e6 or (v != 0 and abs(v) < 10 ** (-precision)):
            return f"{v:.{precision}e}"
        return f"{v:.{precision}f}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a fixed-width ASCII table.

    Column widths adapt to the longest cell; numeric cells are
    right-aligned, text cells left-aligned.
    """
    str_rows = [[format_value(c, precision) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(col: int) -> bool:
        cells = [r[col] for r in str_rows]
        return bool(cells) and all(
            c.replace(".", "").replace("-", "").replace("e", "").replace("+", "").replace("x", "").replace("inf", "0").replace("nan", "0").isdigit()
            or _parses_float(c)
            for c in cells
        )

    numeric = [is_numeric(i) for i in range(len(headers))]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(f" {cell:>{widths[i]}} ")
            else:
                parts.append(f" {cell:<{widths[i]}} ")
        return "|" + "|".join(parts) + "|"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def _parses_float(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return False


def render_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    width: int = 60,
    height: int = 12,
) -> str:
    """Render a coarse ASCII line plot of a series (for training curves).

    This is intentionally low-fi: the benchmark output needs to convey the
    *shape* of the curve (rising throughput, falling energy) next to the
    numeric endpoints, not be publication-quality.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return f"{name}: (empty series)"
    import numpy as np

    ys_arr = np.asarray(ys, dtype=np.float64)
    xs_arr = np.asarray(xs, dtype=np.float64)
    finite = np.isfinite(ys_arr)
    if not finite.any():
        return f"{name}: (no finite values)"
    lo, hi = float(ys_arr[finite].min()), float(ys_arr[finite].max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(xs_arr)
    for i in range(n):
        if not np.isfinite(ys_arr[i]):
            continue
        col = int((width - 1) * (i / max(n - 1, 1)))
        row = int((height - 1) * (1 - (ys_arr[i] - lo) / (hi - lo)))
        grid[row][col] = "*"
    lines = [f"{name}  ({y_label} vs {x_label})"]
    lines.append(f"  {hi:.4g} ┤" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 9 + "│" + "".join(grid[r]))
    lines.append(f"  {lo:.4g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 10 + f"{xs_arr[0]:.4g}" + " " * max(1, width - 12) + f"{xs_arr[-1]:.4g}"
    )
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """Accumulates tables/series for one experiment and renders them.

    The benchmark harness builds one report per figure, then prints it so
    the run log contains the same rows the paper reports.
    """

    experiment_id: str
    description: str = ""
    sections: list[str] = field(default_factory=list)

    def add_table(
        self,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        *,
        title: str | None = None,
        precision: int = 3,
    ) -> None:
        """Append a rendered table section."""
        self.sections.append(render_table(headers, rows, title=title, precision=precision))

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float], **kw: Any) -> None:
        """Append a rendered ASCII series section."""
        self.sections.append(render_series(name, xs, ys, **kw))

    def add_text(self, text: str) -> None:
        """Append a free-form text section."""
        self.sections.append(text)

    def render(self) -> str:
        """Render the full report."""
        header = f"=== {self.experiment_id} ==="
        if self.description:
            header += f"\n{self.description}"
        return "\n\n".join([header, *self.sections])

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
