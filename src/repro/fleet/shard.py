"""Shard execution: one :class:`~repro.nfv.cluster_kernel.ClusterKernel` per shard.

A shard is one cluster of the fleet, simulated as a deterministic state
machine driven by coordinator commands:

* ``run(start, n)`` — advance ``n`` global control intervals, pricing
  every hosted chain through the shard's fused cluster kernel, and
  return a :class:`ShardReport` summary (per-interval energy/SLA rows
  plus per-chain and per-node state for the coordinator's decisions);
* ``deploy(ticket)`` / ``undeploy(name)`` — chain arrival, departure and
  the two halves of a cross-shard migration.  A :class:`ChainTicket` is
  the serializable form of a chain in flight: NF names, knobs, flow
  group, destination node;
* ``set_knobs(updates)`` — the scatter half of the SDN steering loop.

Two interchangeable backends execute the same :class:`ShardSim`:
:class:`LocalShard` runs it in-process (tests, determinism reference,
single-process baselines) and :class:`ShardWorker` runs it in a real
worker process behind a pipe — the same message-loop plumbing as
:mod:`repro.rl.apex_mp`'s actor workers, with commands batched so one
coordinator cycle costs one round trip per shard.  The report body does
not travel over the pipe: each worker writes its telemetry into a
shared-memory :class:`~repro.fleet.arena.TelemetryArena` and the run
reply is a tiny ``("telemetry", bank, generation, start, n, n_chains)``
ack; the handle reconstructs the :class:`ShardReport` from the arena
bank using its own ticket mirror (resynced only on deploy/undeploy).
Because every stochastic input is counter-based
(:mod:`repro.fleet.workload`), both backends produce bit-identical
telemetry for the same seed.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro import obs
from repro.fleet.arena import (
    BANKS,
    CHAIN_FIELDS,
    ArenaLayout,
    TelemetryArena,
)
from repro.hw.server import ServerSpec
from repro.nfv.chain import (
    ServiceChain,
    default_chain,
    heavy_chain,
    light_chain,
)
from repro.nfv.cluster_kernel import ClusterKernel
from repro.nfv.engine import bottleneck_utilization
from repro.nfv.knobs import KnobSettings
from repro.nfv.node import Node
from repro.fleet.topology import CHAIN_KINDS
from repro.fleet.workload import WorkloadConfig

#: NF line-ups of the deployable chain presets, derived from the
#: :mod:`repro.nfv.chain` factories so fleet chains can never silently
#: diverge from the identically-named single-cluster presets (kept as
#: names so tickets serialize).
_KIND_NFS: dict[str, tuple[str, ...]] = {
    kind: tuple(nf.name for nf in factory().nfs)
    for kind, factory in (
        ("default", default_chain),
        ("light", light_chain),
        ("heavy", heavy_chain),
    )
}


def kind_nfs(kind: str, index: int = 0) -> tuple[str, ...]:
    """NF names for a chain preset id (``"mixed"`` cycles by ``index``)."""
    if kind == "mixed":
        kind = CHAIN_KINDS[index % len(CHAIN_KINDS)]
    try:
        return _KIND_NFS[kind]
    except KeyError:
        raise ValueError(
            f"unknown chain kind {kind!r}; options: {('mixed', *_KIND_NFS)}"
        ) from None


def knobs_dict(knobs: KnobSettings) -> dict[str, Any]:
    """KnobSettings -> plain dict (ticket / report serialization)."""
    return {
        "cpu_share": knobs.cpu_share,
        "cpu_freq_ghz": knobs.cpu_freq_ghz,
        "llc_fraction": knobs.llc_fraction,
        "dma_mb": knobs.dma_mb,
        "batch_size": int(knobs.batch_size),
    }


@dataclass(frozen=True)
class ChainTicket:
    """A chain in serializable form: deployment order or migration cargo."""

    name: str
    nfs: tuple[str, ...]
    flow: str
    node: int
    knobs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chain ticket needs a name")
        if not self.nfs:
            raise ValueError("chain ticket needs at least one NF")
        if self.node < 0:
            raise ValueError("node index must be >= 0")
        if not isinstance(self.nfs, tuple):
            object.__setattr__(self, "nfs", tuple(self.nfs))
        if not isinstance(self.knobs, dict):
            object.__setattr__(self, "knobs", dict(self.knobs))

    def with_node(self, node: int) -> "ChainTicket":
        """The same chain re-targeted at another node (migration)."""
        return replace(self, node=node)


@dataclass(frozen=True)
class ShardConfig:
    """Everything one shard worker needs to build its simulation."""

    name: str
    n_nodes: int
    seed: int
    interval_s: float
    sla: str
    sla_params: Mapping[str, Any]
    workload: Mapping[str, Any]
    parked_power_w: float
    initial_chains: tuple[ChainTicket, ...] = ()
    #: Telemetry-arena capacity: interval rows per ``run`` reply and the
    #: hard cap on hosted chains (0 = auto-size from the initial layout).
    arena_intervals: int = 64
    arena_chains: int = 0
    #: When true a spawned worker enables :mod:`repro.obs` in buffered
    #: mode (spans/counters travel back over the ``drain_spans`` pipe
    #: round trip).  Set from ``obs.enabled()`` at coordinator build.
    trace: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("shard config needs a name")
        if self.n_nodes < 1:
            raise ValueError("shard needs at least one node")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if self.parked_power_w < 0:
            raise ValueError("parked power must be >= 0")
        if self.arena_intervals < 1:
            raise ValueError("arena_intervals must be >= 1")
        if self.arena_chains < 0:
            raise ValueError("arena_chains must be >= 0")
        if not isinstance(self.sla_params, dict):
            object.__setattr__(self, "sla_params", dict(self.sla_params))
        if not isinstance(self.workload, dict):
            object.__setattr__(self, "workload", dict(self.workload))
        if not isinstance(self.initial_chains, tuple):
            object.__setattr__(self, "initial_chains", tuple(self.initial_chains))


def arena_layout_for(config: ShardConfig) -> ArenaLayout:
    """The telemetry-arena shape implied by a shard config.

    Both pipe ends call this on the *same* config, so the layout never
    needs to be negotiated over the pipe.  ``arena_chains=0`` auto-sizes
    to comfortably above the initial deployment (churn and migration can
    only grow a shard up to the coordinator's admission caps, which pass
    an explicit capacity instead).
    """
    chains = config.arena_chains or max(
        16, 2 * len(config.initial_chains), 2 * config.n_nodes
    )
    return ArenaLayout(
        max_intervals=config.arena_intervals,
        max_chains=chains,
        n_nodes=config.n_nodes,
    )


@dataclass(frozen=True)
class IntervalRecord:
    """One shard's aggregate telemetry for one global interval."""

    index: int
    energy_j: float
    throughput_gbps: float
    offered_pps: float
    sla_violations: int
    chains: int


@dataclass(frozen=True)
class ChainSummary:
    """One chain's last-interval state, as the coordinator sees it."""

    name: str
    shard: str
    node: int
    flow: str
    nfs: tuple[str, ...]
    utilization: float  # bottleneck-stage utilization (the steering signal)
    throughput_gbps: float
    power_w: float
    offered_pps: float
    sla_ok: bool
    state_bytes: float
    dma_bytes: float
    knobs: Mapping[str, Any]


@dataclass(frozen=True)
class NodeSummary:
    """One node's last-interval state (consolidation signals)."""

    shard: str
    node: int
    chains: int
    power_w: float
    utilization: float  # max bottleneck utilization over hosted chains


@dataclass(frozen=True)
class ShardReport:
    """The gather payload: one shard's answer to a ``run`` command."""

    shard: str
    intervals: tuple[IntervalRecord, ...]
    chains: tuple[ChainSummary, ...]
    nodes: tuple[NodeSummary, ...]


class ShardSim:
    """The deterministic shard state machine (backend-independent)."""

    def __init__(self, config: ShardConfig):
        from repro.scenario.catalog import SLAS  # deferred: registry import

        self.config = config
        self.workload = WorkloadConfig.from_dict(config.workload)
        self.sla = SLAS.get(config.sla)(**dict(config.sla_params))
        self.nodes = [
            Node(ServerSpec(name=f"{config.name}.n{i}"))
            for i in range(config.n_nodes)
        ]
        self.kernel = ClusterKernel(self.nodes)
        self._tickets: dict[str, ChainTicket] = {}
        self._interval = 0
        self._node_energy = [0.0] * config.n_nodes
        self._last_node_power = [0.0] * config.n_nodes
        self._last_samples: dict[str, Any] = {}
        for ticket in config.initial_chains:
            self.deploy(ticket)

    # -- deployment commands -----------------------------------------------

    @property
    def chain_names(self) -> list[str]:
        """Hosted chains in sorted order."""
        return sorted(self._tickets)

    def deploy(self, ticket: ChainTicket) -> None:
        """Deploy a ticketed chain on its target node."""
        if ticket.name in self._tickets:
            raise ValueError(f"chain {ticket.name!r} already on shard")
        if not 0 <= ticket.node < len(self.nodes):
            raise ValueError(
                f"node {ticket.node} out of range for shard {self.config.name!r}"
            )
        chain = ServiceChain.from_names(ticket.name, list(ticket.nfs))
        knobs = KnobSettings(**dict(ticket.knobs)) if ticket.knobs else None
        self.nodes[ticket.node].deploy(chain, knobs)
        self._tickets[ticket.name] = ticket

    def undeploy(self, name: str) -> ChainTicket:
        """Remove a chain; returns its ticket with the knobs that stuck."""
        if name not in self._tickets:
            raise KeyError(f"no chain {name!r} on shard {self.config.name!r}")
        ticket = self._tickets.pop(name)
        node = self.nodes[ticket.node]
        applied = knobs_dict(node.chains[name].knobs)
        node.undeploy(name)
        self._last_samples.pop(name, None)
        return replace(ticket, knobs=applied)

    def set_knobs(self, updates: Mapping[str, Mapping[str, Any]]) -> None:
        """Apply per-chain knob settings (clamped on the owning node)."""
        for name, settings in updates.items():
            if name not in self._tickets:
                raise KeyError(f"no chain {name!r} on shard {self.config.name!r}")
            node = self.nodes[self._tickets[name].node]
            node.apply_knobs(name, KnobSettings(**dict(settings)))

    # -- the stepping loop -------------------------------------------------

    def run(self, start: int, n: int) -> ShardReport:
        """Advance ``n`` global intervals ``[start, start + n)``.

        ``start`` must match the shard's own clock — the fleet steps in
        lockstep, and a drifted shard would silently draw the wrong
        counter-based traffic.
        """
        with obs.span("shard/run", shard=self.config.name, start=start, n=n):
            return self._run_inner(start, n)

    def _run_inner(self, start: int, n: int) -> ShardReport:
        if n < 1:
            raise ValueError("must run at least one interval")
        if start != self._interval:
            raise ValueError(
                f"shard {self.config.name!r} is at interval {self._interval}, "
                f"coordinator asked for {start}"
            )
        cfg = self.config
        dt = cfg.interval_s
        seed = cfg.seed
        records: list[IntervalRecord] = []
        for index in range(start, start + n):
            offered = {
                name: self.workload.offered(seed, name, index, dt)
                for name in self._tickets
            }
            samples = self.kernel.step(offered, dt)
            # Node-level energy: meter deltas, so idle (but unvacated)
            # nodes are billed; a node with no chains at all is parked
            # and billed at the parked floor instead.
            energy = 0.0
            for j, node in enumerate(self.nodes):
                delta = node.meter.total_joules - self._node_energy[j]
                self._node_energy[j] = node.meter.total_joules
                node_j = delta if node.chains else cfg.parked_power_w * dt
                self._last_node_power[j] = node_j / dt
                energy += node_j
            throughput = sum(s.throughput_gbps for s in samples.values())
            offered_total = sum(pps for pps, _ in offered.values())
            violations = sum(
                0 if self.sla.satisfied(s) else 1 for s in samples.values()
            )
            records.append(
                IntervalRecord(
                    index=index,
                    energy_j=energy,
                    throughput_gbps=throughput,
                    offered_pps=offered_total,
                    sla_violations=violations,
                    chains=len(samples),
                )
            )
            self._last_samples = samples
            self._interval += 1
        chain_summaries = self._chain_summaries()
        return ShardReport(
            shard=cfg.name,
            intervals=tuple(records),
            chains=tuple(chain_summaries),
            nodes=tuple(self._node_summaries(chain_summaries)),
        )

    def _chain_summaries(self) -> list[ChainSummary]:
        out: list[ChainSummary] = []
        for name in sorted(self._tickets):
            ticket = self._tickets[name]
            hosted = self.nodes[ticket.node].chains[name]
            sample = self._last_samples.get(name)
            out.append(
                ChainSummary(
                    name=name,
                    shard=self.config.name,
                    node=ticket.node,
                    flow=ticket.flow,
                    nfs=ticket.nfs,
                    utilization=(
                        bottleneck_utilization(sample) if sample is not None else 0.0
                    ),
                    throughput_gbps=(
                        sample.throughput_gbps if sample is not None else 0.0
                    ),
                    power_w=sample.power_w if sample is not None else 0.0,
                    offered_pps=sample.offered_pps if sample is not None else 0.0,
                    sla_ok=(
                        bool(self.sla.satisfied(sample))
                        if sample is not None
                        else True
                    ),
                    state_bytes=hosted.chain.total_state_bytes,
                    dma_bytes=hosted.knobs.dma_bytes,
                    knobs=knobs_dict(hosted.knobs),
                )
            )
        return out

    def _node_summaries(
        self, chain_summaries: list[ChainSummary]
    ) -> list[NodeSummary]:
        by_node: dict[int, list[ChainSummary]] = {}
        for summary in chain_summaries:
            by_node.setdefault(summary.node, []).append(summary)
        out: list[NodeSummary] = []
        for j, node in enumerate(self.nodes):
            hosted = by_node.get(j, [])
            out.append(
                NodeSummary(
                    shard=self.config.name,
                    node=j,
                    chains=len(hosted),
                    power_w=self._last_node_power[j],
                    utilization=max((c.utilization for c in hosted), default=0.0),
                )
            )
        return out


# -- backends ------------------------------------------------------------------


class LocalShard:
    """In-process shard handle: the determinism reference backend."""

    backend = "local"

    def __init__(self, config: ShardConfig):
        self.sim = ShardSim(config)
        self._pending: ShardReport | None = None

    def begin_run(self, start: int, n: int) -> None:
        """Start one run command (executes synchronously in-process)."""
        if self._pending is not None:
            raise RuntimeError("previous run not collected")
        self._pending = self.sim.run(start, n)

    def finish_run(self) -> ShardReport:
        """Collect the report of the last :meth:`begin_run`."""
        if self._pending is None:
            raise RuntimeError("no run in flight")
        report, self._pending = self._pending, None
        return report

    def deploy(self, ticket: ChainTicket) -> None:
        """Deploy a ticketed chain."""
        self.sim.deploy(ticket)

    def undeploy(self, name: str) -> ChainTicket:
        """Remove a chain; returns its migration ticket."""
        return self.sim.undeploy(name)

    def set_knobs(self, updates: Mapping[str, Mapping[str, Any]]) -> None:
        """Apply per-chain knob settings."""
        self.sim.set_knobs(updates)

    def close(self) -> None:
        """No resources to release in-process."""


def _error_payload(
    exc: BaseException,
    *,
    frames: int = 8,
    spans: list[dict[str, Any]] | None = None,
    counters: dict[str, float] | None = None,
) -> tuple:
    """An ``("error", summary, trimmed_traceback[, spans, counters])`` reply.

    The worker-side traceback is what makes a shard failure debuggable
    from the parent — ``KeyError: 'c3'`` alone says nothing about which
    ``undeploy``/``set_knobs`` path raised it.  Only the last ``frames``
    stack entries ship (the failure site, not the pipe plumbing), and as
    a plain string: tracebacks themselves do not pickle.

    When the worker is tracing, its buffered spans and counter deltas
    ride the error reply (``spans``/``counters``), so instrumentation
    recorded before a crash still reaches the coordinator's trace file.
    Callers that never trace get the plain 3-tuple unchanged.
    """
    summary = f"{type(exc).__name__}: {exc}"
    trimmed = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__, limit=-frames)
    ).rstrip()
    if spans is None:
        return ("error", summary, trimmed)
    return ("error", summary, trimmed, spans, counters or {})


def shard_worker(config: ShardConfig, conn, arena_name: str) -> None:
    """Worker-process main loop (one shard's NF/SDN agent).

    Construction is part of the protocol: the worker reports ``ready``
    (or the construction error) before entering the command loop, so a
    bad config surfaces as the real exception message in the parent —
    exactly where the local backend would raise it — instead of a dead
    pipe on the first command.

    Run telemetry travels through the shared-memory arena named
    ``arena_name`` (created and owned by the parent handle): the worker
    stores each report into the bank ``runs % BANKS`` and replies with a
    small ``("telemetry", ...)`` ack.  The ``generation`` counter bumps
    on every successful deploy/undeploy — the parent mirrors it, so a
    telemetry ack written against a stale chain set is detected instead
    of silently mis-mapping arena rows to chain names.
    """
    if config.trace:
        # Fresh buffered tracer/registry — any obs state inherited over a
        # fork (the parent's open trace file!) is abandoned, never closed.
        obs.enable_worker(f"shard-{config.name}")
    try:
        sim = ShardSim(config)
        arena = TelemetryArena.attach(arena_name, arena_layout_for(config))
    except Exception as exc:
        try:
            conn.send(_error_payload(exc))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        return
    conn.send(("ready", config.name))
    generation = 0
    runs = 0
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                conn.send(("stopped", config.name))
                return
            try:
                if kind == "run":
                    if msg[2] > arena.layout.max_intervals:
                        # Refuse before stepping: a post-hoc overflow in
                        # store_report would leave the sim clock advanced
                        # with the telemetry dropped.
                        raise ValueError(
                            f"shard {config.name!r} arena is sized for "
                            f"{arena.layout.max_intervals} interval rows "
                            f"per run, asked for {msg[2]}"
                        )
                    report = sim.run(msg[1], msg[2])
                    bank = runs % BANKS
                    arena.store_report(bank, generation, report)
                    runs += 1
                    conn.send(
                        ("telemetry", bank, generation, msg[1], msg[2],
                         len(report.chains))
                    )
                elif kind == "deploy":
                    if len(sim.chain_names) >= arena.layout.max_chains:
                        raise ValueError(
                            f"shard {config.name!r} arena is sized for "
                            f"{arena.layout.max_chains} chains; deploy of "
                            f"{msg[1].name!r} refused"
                        )
                    sim.deploy(msg[1])
                    generation += 1
                    conn.send(("ok",))
                elif kind == "undeploy":
                    ticket = sim.undeploy(msg[1])
                    generation += 1
                    conn.send(("ticket", ticket))
                elif kind == "knobs":
                    sim.set_knobs(msg[1])
                    conn.send(("ok",))
                elif kind == "drain_spans":
                    # Buffered trace events + counter deltas; both empty
                    # lists/dicts when the worker is not tracing.
                    conn.send(
                        ("spans", obs.drain_events(), obs.drain_counters())
                    )
                else:
                    conn.send(("error", f"unknown message {kind!r}"))
            except Exception as exc:  # keep the worker alive; report back
                conn.send(
                    _error_payload(
                        exc,
                        spans=obs.drain_events() if config.trace else None,
                        counters=obs.drain_counters(),
                    )
                )
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        return
    finally:
        arena.close()


class ShardWorker:
    """Process-backed shard handle: one worker process, one pipe, one
    shared-memory telemetry arena.

    The coordinator overlaps shards by sending every handle its ``run``
    command before collecting any ack; deployment and knob commands are
    synchronous (they are rare and must be ordered).  The handle keeps a
    ticket mirror of the worker's chain set — sorted chain name is the
    arena row order — plus a generation counter bumped on every
    deploy/undeploy, so :meth:`finish_run` can rebuild the
    :class:`ShardReport` from the arena bank and detect a desynced row
    map instead of mis-attributing telemetry.
    """

    backend = "process"

    def __init__(self, config: ShardConfig, *, mp_context: str | None = None):
        ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self.name = config.name
        self.arena = TelemetryArena.create(arena_layout_for(config))
        self._tickets: dict[str, ChainTicket] = {
            ticket.name: ticket for ticket in config.initial_chains
        }
        self._generation = 0
        self._runs = 0
        self._run_span: tuple[int, int] | None = None
        self._in_flight = False
        self._closed = False
        self._conn = None
        self._proc = None
        #: Crash forensics: the opcode awaiting its reply and the last
        #: interval a completed run reached — both reported when the
        #: worker dies without replying.
        self._pending_op: str | None = "spawn"
        self._last_interval = 0
        try:
            parent_conn, child_conn = ctx.Pipe()
            self._conn = parent_conn
            self._proc = ctx.Process(
                target=shard_worker,
                args=(config, child_conn, self.arena.name),
                daemon=True,
            )
            self._proc.start()
            self._recv("ready")
        except BaseException:
            self.close()
            raise

    def _recv(self, expect: str):
        try:
            msg = self._conn.recv()
        except (EOFError, ConnectionResetError):
            # EOF for an orderly peer close, ECONNRESET when the worker
            # process was killed outright mid-command.  Report what the
            # coordinator knows: the opcode whose reply never came and
            # how far the shard had advanced before it died.
            raise RuntimeError(
                f"shard {self.name!r} worker died without replying "
                f"(pending op {self._pending_op!r}, {self._runs} cycle(s) "
                f"completed, last interval {self._last_interval})"
            ) from None
        if msg[0] == "error":
            # A tracing worker's error reply carries its buffered spans
            # and counter deltas — salvage them before raising, so
            # instrumentation up to the crash lands in the trace.
            if len(msg) > 4 and obs.enabled():
                tracer = obs.tracer()
                if tracer is not None and msg[3]:
                    tracer.ingest(msg[3])
                if msg[4]:
                    obs.registry().merge_counters(msg[4])
            detail = msg[1]
            if len(msg) > 2 and msg[2]:
                detail = f"{detail}\n--- worker traceback ---\n{msg[2]}"
            raise RuntimeError(f"shard {self.name!r} worker: {detail}")
        if msg[0] != expect:  # pragma: no cover - protocol bug
            raise RuntimeError(f"shard {self.name!r}: expected {expect!r}, got {msg[0]!r}")
        self._pending_op = None
        if len(msg) > 2:
            return tuple(msg[1:])
        return msg[1] if len(msg) > 1 else None

    def begin_run(self, start: int, n: int) -> None:
        """Dispatch one run command without waiting for the ack."""
        if self._in_flight:
            raise RuntimeError("previous run not collected")
        self._pending_op = "run"
        self._conn.send(("run", start, n))
        self._run_span = (start, n)
        self._in_flight = True

    def finish_run(self) -> ShardReport:
        """Block for the telemetry ack, then rebuild the report from the
        arena bank it names."""
        if not self._in_flight:
            raise RuntimeError("no run in flight")
        self._in_flight = False
        bank, generation, start, n, n_chains = self._recv("telemetry")
        expected_bank = self._runs % BANKS
        self._runs += 1
        if (
            bank != expected_bank
            or generation != self._generation
            or (start, n) != self._run_span
            or n_chains != len(self._tickets)
        ):  # pragma: no cover - protocol bug
            raise RuntimeError(
                f"shard {self.name!r}: telemetry ack out of sync (bank "
                f"{bank}/{expected_bank}, generation {generation}/"
                f"{self._generation}, span {(start, n)}/{self._run_span}, "
                f"chains {n_chains}/{len(self._tickets)})"
            )
        self._last_interval = start + n
        with obs.span("shard/arena_rebuild", shard=self.name, bank=bank):
            return self._load_report(bank, start, n)

    def _load_report(self, bank: int, start: int, n: int) -> ShardReport:
        """Arena bank -> :class:`ShardReport` (scalar copies off the
        shared views; names/flows/NFs come from the ticket mirror)."""
        arena = self.arena
        ivals = arena.intervals(bank)
        intervals = tuple(
            IntervalRecord(
                index=start + j,
                energy_j=float(ivals[j, 0]),
                throughput_gbps=float(ivals[j, 1]),
                offered_pps=float(ivals[j, 2]),
                sla_violations=int(ivals[j, 3]),
                chains=int(ivals[j, 4]),
            )
            for j in range(n)
        )
        rows = arena.chains(bank)
        width = len(CHAIN_FIELDS)
        chains: list[ChainSummary] = []
        for i, name in enumerate(sorted(self._tickets)):
            ticket = self._tickets[name]
            row = rows[i]
            if int(row[0]) != ticket.node:  # pragma: no cover - protocol bug
                raise RuntimeError(
                    f"shard {self.name!r}: arena row {i} is on node "
                    f"{int(row[0])}, ticket mirror says chain {name!r} "
                    f"is on node {ticket.node}"
                )
            chains.append(
                ChainSummary(
                    name=name,
                    shard=self.name,
                    node=ticket.node,
                    flow=ticket.flow,
                    nfs=ticket.nfs,
                    utilization=float(row[1]),
                    throughput_gbps=float(row[2]),
                    power_w=float(row[3]),
                    offered_pps=float(row[4]),
                    sla_ok=bool(row[5]),
                    state_bytes=float(row[6]),
                    dma_bytes=float(row[7]),
                    knobs={
                        "cpu_share": float(row[width]),
                        "cpu_freq_ghz": float(row[width + 1]),
                        "llc_fraction": float(row[width + 2]),
                        "dma_mb": float(row[width + 3]),
                        "batch_size": int(row[width + 4]),
                    },
                )
            )
        node_rows = arena.nodes(bank)
        nodes = tuple(
            NodeSummary(
                shard=self.name,
                node=j,
                chains=int(node_rows[j, 0]),
                power_w=float(node_rows[j, 1]),
                utilization=float(node_rows[j, 2]),
            )
            for j in range(arena.layout.n_nodes)
        )
        return ShardReport(
            shard=self.name,
            intervals=intervals,
            chains=tuple(chains),
            nodes=nodes,
        )

    def deploy(self, ticket: ChainTicket) -> None:
        """Deploy a ticketed chain (synchronous; resyncs the row map)."""
        self._pending_op = "deploy"
        self._conn.send(("deploy", ticket))
        self._recv("ok")
        self._tickets[ticket.name] = ticket
        self._generation += 1
        if obs._ENABLED:
            obs.inc("fleet/arena/generation_bumps")

    def undeploy(self, name: str) -> ChainTicket:
        """Remove a chain; returns its migration ticket (synchronous;
        resyncs the row map)."""
        self._pending_op = "undeploy"
        self._conn.send(("undeploy", name))
        ticket = self._recv("ticket")
        del self._tickets[name]
        self._generation += 1
        if obs._ENABLED:
            obs.inc("fleet/arena/generation_bumps")
        return ticket

    def set_knobs(self, updates: Mapping[str, Mapping[str, Any]]) -> None:
        """Apply per-chain knob settings (synchronous)."""
        self._pending_op = "knobs"
        self._conn.send(("knobs", dict(updates)))
        self._recv("ok")

    def drain_spans(self) -> tuple[list[dict[str, Any]], dict[str, float]]:
        """Pull the worker's buffered trace events and counter deltas
        (synchronous; coordinator calls this between cycles)."""
        self._pending_op = "drain_spans"
        self._conn.send(("drain_spans",))
        events, counters = self._recv("spans")
        return events, counters

    def close(self) -> None:
        """Stop the worker, reap its process and reclaim the arena."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._conn is not None:
                if self._in_flight:
                    # Drain the pending telemetry ack first: the stop
                    # handshake below would otherwise consume it as its
                    # own reply and tear the worker down mid-run.
                    self._in_flight = False
                    try:
                        if self._conn.poll(30.0):
                            self._conn.recv()
                    except (EOFError, OSError):
                        pass
                try:
                    self._conn.send(("stop",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
                else:
                    try:
                        if self._conn.poll(2.0):
                            self._conn.recv()
                    except (EOFError, OSError):  # pragma: no cover
                        pass
            if self._proc is not None:
                self._proc.join(timeout=5.0)
                if self._proc.is_alive():  # pragma: no cover - stuck worker
                    self._proc.terminate()
                    self._proc.join(timeout=2.0)
        finally:
            self.arena.close()
            self.arena.unlink()

    def __enter__(self) -> "ShardWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
