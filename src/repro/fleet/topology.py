"""Fleet topology: shards of clusters joined by a weighted link graph.

A :class:`FleetTopology` is pure data — JSON-round-trippable like a
:class:`~repro.scenario.spec.ScenarioSpec` — describing the shape of the
fleet: how many shards, how many NF-host nodes and initially deployed
chains per shard, and the capacity/latency of the links the cross-shard
chain migrations travel over.

The link structure is a true graph.  In the default **mesh** mode
(``mesh=True``) every shard pair is adjacent: links not listed
explicitly fall back to the topology's default full-mesh link, so small
specs stay small and every pre-graph spec keeps its exact semantics.
With ``mesh=False`` only the explicit :class:`InterShardLink` entries
are edges; non-adjacent shards are reachable only over multi-hop routed
paths (see :mod:`repro.fleet.routing`), and the graph must be connected.
:meth:`FleetTopology.fat_tree` and :meth:`FleetTopology.wan` build the
two canonical non-mesh shapes; ``{"preset": "fat-tree", ...}`` in a
topology dict resolves them declaratively via :data:`TOPOLOGY_PRESETS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Chain presets a shard may deploy; "mixed" cycles through all three.
CHAIN_KINDS = ("default", "light", "heavy")


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a cluster of homogeneous NF-host nodes."""

    name: str
    nodes: int = 2
    chains_per_node: int = 2
    #: Chain preset for the initial deployment: one of
    #: :data:`CHAIN_KINDS` or ``"mixed"`` (cycles through them).
    chain_kind: str = "mixed"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("shard needs a non-empty name")
        if self.nodes < 1:
            raise ValueError("shard needs at least one node")
        if self.chains_per_node < 0:
            raise ValueError("chains_per_node must be >= 0")
        if self.chain_kind != "mixed" and self.chain_kind not in CHAIN_KINDS:
            raise ValueError(
                f"unknown chain kind {self.chain_kind!r}; "
                f"options: {('mixed', *CHAIN_KINDS)}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "chains_per_node": self.chains_per_node,
            "chain_kind": self.chain_kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        """Build (and validate) from a plain dict."""
        return cls(**dict(data))


@dataclass(frozen=True)
class InterShardLink:
    """A bidirectional link between two shards (migration transport)."""

    a: str
    b: str
    gbps: float = 40.0
    latency_s: float = 2e-3

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise ValueError("link endpoints need names")
        if self.a == self.b:
            raise ValueError(f"link endpoints must differ (got {self.a!r} twice)")
        if self.gbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency must be >= 0")

    @property
    def key(self) -> tuple[str, str]:
        """Direction-independent endpoint pair."""
        return tuple(sorted((self.a, self.b)))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {"a": self.a, "b": self.b, "gbps": self.gbps, "latency_s": self.latency_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InterShardLink":
        """Build (and validate) from a plain dict."""
        return cls(**dict(data))


@dataclass(frozen=True)
class FleetTopology:
    """Shards plus the weighted inter-shard link graph between them."""

    shards: tuple[ShardSpec, ...]
    links: tuple[InterShardLink, ...] = ()
    #: Fallback full-mesh link used for shard pairs without an explicit
    #: :class:`InterShardLink` entry (mesh mode only).
    default_link_gbps: float = 40.0
    default_link_latency_s: float = 2e-3
    #: ``True``: every shard pair is adjacent (explicit link or the
    #: default fallback) — the pre-graph semantics.  ``False``: only the
    #: explicit ``links`` are edges; other pairs route multi-hop.
    mesh: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.shards, tuple):
            object.__setattr__(self, "shards", tuple(self.shards))
        if not isinstance(self.links, tuple):
            object.__setattr__(self, "links", tuple(self.links))
        if not self.shards:
            raise ValueError("fleet needs at least one shard")
        names = [s.name for s in self.shards]
        if len(names) != len(set(names)):
            raise ValueError(f"shard names must be unique: {names}")
        if self.default_link_gbps <= 0:
            raise ValueError("default link capacity must be positive")
        if self.default_link_latency_s < 0:
            raise ValueError("default link latency must be >= 0")
        known = set(names)
        seen: set[tuple[str, str]] = set()
        for link in self.links:
            unknown = {link.a, link.b} - known
            if unknown:
                raise ValueError(f"link references unknown shards {sorted(unknown)}")
            if link.key in seen:
                raise ValueError(f"duplicate link between {link.key}")
            seen.add(link.key)
        if not self.mesh and len(names) > 1:
            # Every shard must be reachable: an unroutable migration
            # graph should fail at spec time, not mid-run.
            adjacent: dict[str, set[str]] = {n: set() for n in names}
            for link in self.links:
                adjacent[link.a].add(link.b)
                adjacent[link.b].add(link.a)
            reached = {names[0]}
            frontier = [names[0]]
            while frontier:
                nxt = []
                for cur in frontier:
                    for n in adjacent[cur]:
                        if n not in reached:
                            reached.add(n)
                            nxt.append(n)
                frontier = nxt
            unreachable = sorted(set(names) - reached)
            if unreachable:
                raise ValueError(
                    f"topology graph is disconnected (mesh=False): shards "
                    f"{unreachable} are unreachable from {names[0]!r}"
                )

    # -- lookups -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def total_nodes(self) -> int:
        """NF-host nodes across the whole fleet."""
        return sum(s.nodes for s in self.shards)

    @property
    def total_chains(self) -> int:
        """Initially deployed chains across the whole fleet."""
        return sum(s.nodes * s.chains_per_node for s in self.shards)

    def shard(self, name: str) -> ShardSpec:
        """Look a shard up by name."""
        for s in self.shards:
            if s.name == name:
                return s
        raise KeyError(f"no shard {name!r}; shards: {[s.name for s in self.shards]}")

    def link_between(self, a: str, b: str) -> InterShardLink:
        """The direct link between two *adjacent* shards.

        In mesh mode every pair is adjacent (explicit entry or the
        default fallback).  With ``mesh=False`` only explicit links are
        edges; asking for a non-adjacent pair raises — route over
        :class:`~repro.fleet.routing.RoutingTable` paths instead.
        """
        self.shard(a), self.shard(b)  # raise on unknown names
        if a == b:
            raise ValueError("no inter-shard link within one shard")
        key = tuple(sorted((a, b)))
        for link in self.links:
            if link.key == key:
                return link
        if not self.mesh:
            raise ValueError(
                f"shards {key[0]!r} and {key[1]!r} are not adjacent "
                "(mesh=False); migrations between them route multi-hop"
            )
        return InterShardLink(
            key[0], key[1], self.default_link_gbps, self.default_link_latency_s
        )

    def edges(self) -> tuple[InterShardLink, ...]:
        """Every direct edge of the link graph, sorted by endpoint pair.

        Mesh topologies enumerate all shard pairs (explicit entries plus
        default fallbacks); graph topologies return the explicit links.
        This is the adjacency a :class:`~repro.fleet.routing.RoutingTable`
        compiles from.
        """
        if not self.mesh:
            return tuple(sorted(self.links, key=lambda l: l.key))
        names = [s.name for s in self.shards]
        return tuple(
            self.link_between(names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        )

    def flatten(self) -> list[tuple[str, int]]:
        """Global node list: ``(shard_name, node_index)`` in shard order.

        The coordinator's global placement (``consolidation_plan`` over
        the whole fleet) indexes nodes by position in this list.
        """
        return [(s.name, i) for s in self.shards for i in range(s.nodes)]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; ``from_dict(to_dict())`` is the identity."""
        return {
            "shards": [s.to_dict() for s in self.shards],
            "links": [l.to_dict() for l in self.links],
            "default_link_gbps": self.default_link_gbps,
            "default_link_latency_s": self.default_link_latency_s,
            "mesh": self.mesh,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetTopology":
        """Build (and validate) from a plain dict.

        ``{"preset": "fat-tree", "pods": 3}`` dispatches to the named
        :data:`TOPOLOGY_PRESETS` builder with the sibling keys as its
        arguments; otherwise the dict is the explicit shards/links form.
        """
        data = dict(data)
        preset = data.pop("preset", None)
        if preset is not None:
            try:
                builder = TOPOLOGY_PRESETS[preset]
            except KeyError:
                raise ValueError(
                    f"unknown topology preset {preset!r}; "
                    f"options: {sorted(TOPOLOGY_PRESETS)}"
                ) from None
            try:
                return builder(**data)
            except TypeError as exc:
                raise ValueError(
                    f"invalid arguments for topology preset {preset!r}: {exc}"
                ) from exc
        shards = tuple(ShardSpec.from_dict(s) for s in data.pop("shards", ()))
        links = tuple(InterShardLink.from_dict(l) for l in data.pop("links", ()))
        return cls(shards=shards, links=links, **data)

    @staticmethod
    def uniform(
        n_shards: int,
        nodes: int = 2,
        chains_per_node: int = 2,
        *,
        chain_kind: str = "mixed",
        link_gbps: float = 40.0,
        link_latency_s: float = 2e-3,
    ) -> "FleetTopology":
        """A homogeneous full-mesh fleet (the common benchmark shape)."""
        if n_shards < 1:
            raise ValueError("fleet needs at least one shard")
        return FleetTopology(
            shards=tuple(
                ShardSpec(f"s{i}", nodes, chains_per_node, chain_kind)
                for i in range(n_shards)
            ),
            default_link_gbps=link_gbps,
            default_link_latency_s=link_latency_s,
        )

    @staticmethod
    def fat_tree(
        pods: int = 2,
        shards_per_pod: int = 2,
        nodes: int = 2,
        chains_per_node: int = 2,
        *,
        chain_kind: str = "mixed",
        edge_gbps: float = 100.0,
        edge_latency_s: float = 5e-4,
        core_gbps: float = 400.0,
        core_latency_s: float = 2e-3,
    ) -> "FleetTopology":
        """A two-tier fat-tree: pods of shards behind a core mesh.

        Shard ``p{p}s{i}`` sits in pod ``p``.  Shards inside one pod are
        fully meshed over fat edge links; the first shard of each pod is
        the pod leader, and the leaders form the core mesh.  Cross-pod
        migrations between non-leaders therefore route three hops
        (edge up, core across, edge down) — the bottleneck is whichever
        tier is thinner.
        """
        if pods < 1:
            raise ValueError("fat-tree needs at least one pod")
        if shards_per_pod < 1:
            raise ValueError("fat-tree needs at least one shard per pod")
        shards = tuple(
            ShardSpec(f"p{p}s{i}", nodes, chains_per_node, chain_kind)
            for p in range(pods)
            for i in range(shards_per_pod)
        )
        links: list[InterShardLink] = []
        for p in range(pods):
            for i in range(shards_per_pod):
                for j in range(i + 1, shards_per_pod):
                    links.append(
                        InterShardLink(
                            f"p{p}s{i}", f"p{p}s{j}", edge_gbps, edge_latency_s
                        )
                    )
        for p in range(pods):
            for q in range(p + 1, pods):
                links.append(
                    InterShardLink(
                        f"p{p}s0", f"p{q}s0", core_gbps, core_latency_s
                    )
                )
        return FleetTopology(shards=shards, links=tuple(links), mesh=False)

    @staticmethod
    def wan(
        n_sites: int = 4,
        nodes: int = 2,
        chains_per_node: int = 2,
        *,
        chain_kind: str = "mixed",
        gbps: float = 10.0,
        latency_s: float = 0.02,
        express_gbps: float = 40.0,
        express_latency_s: float = 0.03,
    ) -> "FleetTopology":
        """A WAN ring of sites with one express chord.

        Sites ``site0..siteN-1`` are joined in a ring of thin, long-haul
        links; for four or more sites an express chord joins ``site0``
        to the antipodal site.  Most migrations are multi-hop, so routed
        path costs (latency sums, bottleneck bandwidth) dominate — the
        shape that separates topology-aware placement from the full-mesh
        model.
        """
        if n_sites < 2:
            raise ValueError("a WAN needs at least two sites")
        shards = tuple(
            ShardSpec(f"site{i}", nodes, chains_per_node, chain_kind)
            for i in range(n_sites)
        )
        if n_sites == 2:
            ring = [InterShardLink("site0", "site1", gbps, latency_s)]
        else:
            ring = [
                InterShardLink(
                    f"site{i}", f"site{(i + 1) % n_sites}", gbps, latency_s
                )
                for i in range(n_sites)
            ]
        if n_sites >= 4:
            ring.append(
                InterShardLink(
                    "site0", f"site{n_sites // 2}",
                    express_gbps, express_latency_s,
                )
            )
        return FleetTopology(shards=shards, links=tuple(ring), mesh=False)


#: Named topology builders reachable from ``{"preset": ...}`` dicts.
TOPOLOGY_PRESETS = {
    "full-mesh": FleetTopology.uniform,
    "fat-tree": FleetTopology.fat_tree,
    "wan": FleetTopology.wan,
}
