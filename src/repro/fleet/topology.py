"""Fleet topology: shards of clusters joined by inter-shard links.

A :class:`FleetTopology` is pure data — JSON-round-trippable like a
:class:`~repro.scenario.spec.ScenarioSpec` — describing the shape of the
fleet: how many shards, how many NF-host nodes and initially deployed
chains per shard, and the capacity/latency of the links the cross-shard
chain migrations travel over.  Links not listed explicitly fall back to
the topology's default full-mesh link, so small specs stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Chain presets a shard may deploy; "mixed" cycles through all three.
CHAIN_KINDS = ("default", "light", "heavy")


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a cluster of homogeneous NF-host nodes."""

    name: str
    nodes: int = 2
    chains_per_node: int = 2
    #: Chain preset for the initial deployment: one of
    #: :data:`CHAIN_KINDS` or ``"mixed"`` (cycles through them).
    chain_kind: str = "mixed"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("shard needs a non-empty name")
        if self.nodes < 1:
            raise ValueError("shard needs at least one node")
        if self.chains_per_node < 0:
            raise ValueError("chains_per_node must be >= 0")
        if self.chain_kind != "mixed" and self.chain_kind not in CHAIN_KINDS:
            raise ValueError(
                f"unknown chain kind {self.chain_kind!r}; "
                f"options: {('mixed', *CHAIN_KINDS)}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "chains_per_node": self.chains_per_node,
            "chain_kind": self.chain_kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        """Build (and validate) from a plain dict."""
        return cls(**dict(data))


@dataclass(frozen=True)
class InterShardLink:
    """A bidirectional link between two shards (migration transport)."""

    a: str
    b: str
    gbps: float = 40.0
    latency_s: float = 2e-3

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise ValueError("link endpoints need names")
        if self.a == self.b:
            raise ValueError(f"link endpoints must differ (got {self.a!r} twice)")
        if self.gbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency must be >= 0")

    @property
    def key(self) -> tuple[str, str]:
        """Direction-independent endpoint pair."""
        return tuple(sorted((self.a, self.b)))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {"a": self.a, "b": self.b, "gbps": self.gbps, "latency_s": self.latency_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InterShardLink":
        """Build (and validate) from a plain dict."""
        return cls(**dict(data))


@dataclass(frozen=True)
class FleetTopology:
    """Shards plus the inter-shard links between them."""

    shards: tuple[ShardSpec, ...]
    links: tuple[InterShardLink, ...] = ()
    #: Fallback full-mesh link used for shard pairs without an explicit
    #: :class:`InterShardLink` entry.
    default_link_gbps: float = 40.0
    default_link_latency_s: float = 2e-3

    def __post_init__(self) -> None:
        if not isinstance(self.shards, tuple):
            object.__setattr__(self, "shards", tuple(self.shards))
        if not isinstance(self.links, tuple):
            object.__setattr__(self, "links", tuple(self.links))
        if not self.shards:
            raise ValueError("fleet needs at least one shard")
        names = [s.name for s in self.shards]
        if len(names) != len(set(names)):
            raise ValueError(f"shard names must be unique: {names}")
        if self.default_link_gbps <= 0:
            raise ValueError("default link capacity must be positive")
        if self.default_link_latency_s < 0:
            raise ValueError("default link latency must be >= 0")
        known = set(names)
        seen: set[tuple[str, str]] = set()
        for link in self.links:
            unknown = {link.a, link.b} - known
            if unknown:
                raise ValueError(f"link references unknown shards {sorted(unknown)}")
            if link.key in seen:
                raise ValueError(f"duplicate link between {link.key}")
            seen.add(link.key)

    # -- lookups -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def total_nodes(self) -> int:
        """NF-host nodes across the whole fleet."""
        return sum(s.nodes for s in self.shards)

    @property
    def total_chains(self) -> int:
        """Initially deployed chains across the whole fleet."""
        return sum(s.nodes * s.chains_per_node for s in self.shards)

    def shard(self, name: str) -> ShardSpec:
        """Look a shard up by name."""
        for s in self.shards:
            if s.name == name:
                return s
        raise KeyError(f"no shard {name!r}; shards: {[s.name for s in self.shards]}")

    def link_between(self, a: str, b: str) -> InterShardLink:
        """The link two shards migrate over (explicit entry or default)."""
        self.shard(a), self.shard(b)  # raise on unknown names
        if a == b:
            raise ValueError("no inter-shard link within one shard")
        key = tuple(sorted((a, b)))
        for link in self.links:
            if link.key == key:
                return link
        return InterShardLink(
            key[0], key[1], self.default_link_gbps, self.default_link_latency_s
        )

    def flatten(self) -> list[tuple[str, int]]:
        """Global node list: ``(shard_name, node_index)`` in shard order.

        The coordinator's global placement (``consolidation_plan`` over
        the whole fleet) indexes nodes by position in this list.
        """
        return [(s.name, i) for s in self.shards for i in range(s.nodes)]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; ``from_dict(to_dict())`` is the identity."""
        return {
            "shards": [s.to_dict() for s in self.shards],
            "links": [l.to_dict() for l in self.links],
            "default_link_gbps": self.default_link_gbps,
            "default_link_latency_s": self.default_link_latency_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetTopology":
        """Build (and validate) from a plain dict."""
        data = dict(data)
        shards = tuple(ShardSpec.from_dict(s) for s in data.pop("shards", ()))
        links = tuple(InterShardLink.from_dict(l) for l in data.pop("links", ()))
        return cls(shards=shards, links=links, **data)

    @staticmethod
    def uniform(
        n_shards: int,
        nodes: int = 2,
        chains_per_node: int = 2,
        *,
        chain_kind: str = "mixed",
        link_gbps: float = 40.0,
        link_latency_s: float = 2e-3,
    ) -> "FleetTopology":
        """A homogeneous full-mesh fleet (the common benchmark shape)."""
        if n_shards < 1:
            raise ValueError("fleet needs at least one shard")
        return FleetTopology(
            shards=tuple(
                ShardSpec(f"s{i}", nodes, chains_per_node, chain_kind)
                for i in range(n_shards)
            ),
            default_link_gbps=link_gbps,
            default_link_latency_s=link_latency_s,
        )
