"""The declarative ``fleet:`` section of a scenario spec.

A :class:`FleetSpec` bundles everything beyond the single-cluster
scenario fields that a fleet run needs: the :class:`~repro.fleet.topology.FleetTopology`,
the :class:`~repro.fleet.workload.WorkloadConfig`, the migration and
knob-steering policies, and the coordinator cadence.  The SLA, interval
length and seed stay on the owning :class:`~repro.scenario.spec.ScenarioSpec`
so a fleet spec cannot disagree with its scenario about them.

:data:`FLEETS` is the fleet-preset registry: named, ready-to-run fleet
sections (``{"preset": "small"}`` in a spec's ``fleet:`` dict resolves
through it, with any sibling keys overriding the preset's values;
nested sections like ``migration`` deep-merge field-by-field, so a
partial override keeps the preset's other fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.fleet.topology import FleetTopology
from repro.fleet.workload import ChurnConfig, FlashCrowdConfig, WorkloadConfig
from repro.scenario.registry import Registry

#: Shard execution backends.
BACKENDS = ("local", "process")


@dataclass(frozen=True)
class MigrationConfig:
    """The cross-shard consolidation policy and its cost model.

    A migration is applied when its estimated energy gain over
    ``amortize_intervals`` control intervals exceeds its cost:

    * **gain** — vacating a node drops it to ``parked_power_w`` (cores
      park, paper §2's consolidation motivation) minus the dynamic power
      the chain adds at its target (``dynamic_fraction`` of its current
      attributed power); joining its flow group adds the flat
      ``colocation_gain_j`` LLC-affinity bonus.
    * **cost** — shipping the chain's resident state + DMA buffer over
      the inter-shard link (``link_power_w`` while transferring) plus a
      fixed ``setup_j`` redeploy overhead; same-shard moves pay only the
      setup.
    * **SLA headroom** — a move is vetoed when the target node's
      bottleneck utilization plus the incoming chain's would exceed
      ``headroom``, or the target is at ``capacity_per_node``.
    """

    budget_per_cycle: int = 2
    headroom: float = 0.85
    low_watermark: float = 0.35
    capacity_per_node: int = 8
    parked_power_w: float = 12.0
    dynamic_fraction: float = 0.6
    colocation_gain_j: float = 2.0
    amortize_intervals: int = 32
    link_power_w: float = 25.0
    setup_j: float = 5.0
    #: Routed-path SLA bound: veto any migration whose shortest-path
    #: latency exceeds this (0 = unbounded, the pre-graph behavior).
    max_path_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.budget_per_cycle < 0:
            raise ValueError("migration budget must be >= 0")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if not 0.0 <= self.low_watermark < self.headroom:
            raise ValueError("need 0 <= low_watermark < headroom")
        if self.capacity_per_node < 1:
            raise ValueError("capacity_per_node must be >= 1")
        if self.parked_power_w < 0:
            raise ValueError("parked power must be >= 0")
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        if self.colocation_gain_j < 0:
            raise ValueError("colocation gain must be >= 0")
        if self.amortize_intervals < 1:
            raise ValueError("amortize_intervals must be >= 1")
        if self.link_power_w < 0:
            raise ValueError("link power must be >= 0")
        if self.setup_j < 0:
            raise ValueError("setup energy must be >= 0")
        if self.max_path_latency_s < 0:
            raise ValueError("max path latency must be >= 0 (0 = unbounded)")


@dataclass(frozen=True)
class SteeringConfig:
    """The coordinator's global knob-steering policy.

    Watermark rules on each chain's bottleneck utilization: overloaded
    chains get more compute (share x ``share_step``, frequency up one
    notch), cold chains shed it.  The per-node clamping still happens on
    the owning node (DVFS ladder, CAT ways), exactly as for the
    single-cluster controllers.
    """

    enabled: bool = True
    high_watermark: float = 0.9
    low_watermark: float = 0.25
    share_step: float = 1.25
    freq_step_ghz: float = 0.15
    share_min: float = 0.25
    share_max: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark < high_watermark <= 1")
        if self.share_step <= 1.0:
            raise ValueError("share_step must be > 1")
        if self.freq_step_ghz <= 0:
            raise ValueError("freq_step_ghz must be positive")
        if not 0.0 < self.share_min <= self.share_max:
            raise ValueError("need 0 < share_min <= share_max")


def _config_dict(obj) -> dict[str, Any]:
    """Frozen-config dataclass -> plain dict (flat fields only)."""
    return {k: getattr(obj, k) for k in obj.__dataclass_fields__}


#: Nested config sections that deep-merge field-by-field over a preset.
_NESTED_SECTIONS = ("workload", "migration", "steering", "topology")


def _merge_section(base: Mapping[str, Any], override: Mapping[str, Any]) -> dict:
    """Recursive field-by-field merge of one nested config section.

    Mapping values merge recursively (``workload.churn`` overrides keep
    the preset's other churn fields); anything else replaces.
    """
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, Mapping) and isinstance(merged.get(key), Mapping):
            merged[key] = _merge_section(merged[key], value)
        else:
            merged[key] = value
    return merged


@dataclass(frozen=True)
class FleetSpec:
    """One complete, serializable fleet-run description."""

    topology: FleetTopology
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    steering: SteeringConfig = field(default_factory=SteeringConfig)
    #: Coordinator cycles to run; each cycle is ``sync_every`` intervals.
    cycles: int = 8
    sync_every: int = 4
    #: Decide/step overlap: 0 = lockstep (decide blocks the shards), 1 =
    #: double-buffered (shards step cycle t+1 while the coordinator
    #: decides on cycle t's telemetry; decisions land one interval
    #: boundary later — bounded staleness).
    pipeline_depth: int = 1
    backend: str = "local"
    #: Which :data:`~repro.fleet.placement.PLACEMENTS` policy proposes
    #: the fleet-wide desired placement each cycle.
    placement: str = "watermark"

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("fleet needs at least one coordinator cycle")
        if self.sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        if self.pipeline_depth not in (0, 1):
            raise ValueError(
                "pipeline_depth must be 0 (lockstep) or 1 (double-buffered)"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown fleet backend {self.backend!r}; options: {BACKENDS}"
            )
        # Imported here: the placement module depends on the routing /
        # workload layers, not the other way around.
        from repro.fleet.placement import PLACEMENTS

        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"options: {PLACEMENTS.names()}"
            )

    @property
    def intervals(self) -> int:
        """Total control intervals of the run."""
        return self.cycles * self.sync_every

    def with_updates(self, **changes: Any) -> "FleetSpec":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; ``from_mapping(to_dict())`` is the identity."""
        return {
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "migration": _config_dict(self.migration),
            "steering": _config_dict(self.steering),
            "cycles": self.cycles,
            "sync_every": self.sync_every,
            "pipeline_depth": self.pipeline_depth,
            "backend": self.backend,
            "placement": self.placement,
        }

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "FleetSpec":
        """Build (and validate) a fleet spec from a ``fleet:`` dict.

        ``{"preset": "small", ...}`` resolves the named :data:`FLEETS`
        preset first; any sibling keys override the preset's values.
        The nested config sections (:data:`_NESTED_SECTIONS`) merge
        **field-by-field** over the preset's: ``{"preset": "small",
        "migration": {"budget_per_cycle": 1}}`` keeps the small preset's
        ``capacity_per_node=4`` and only overrides the budget.  (A
        shallow ``dict.update`` here used to silently reset every
        sibling field of a partially-overridden section to the dataclass
        defaults.)  A ``topology`` override carrying its own ``preset``
        key replaces the section wholesale — a named topology supersedes
        whatever graph the fleet preset shipped.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"fleet section must be a mapping, got {type(data).__name__}"
            )
        data = dict(data)
        preset = data.pop("preset", None)
        if preset is not None:
            try:
                base = dict(FLEETS.get(preset)())
            except KeyError as exc:
                raise ValueError(str(exc).strip('"')) from None
            for key, value in data.items():
                if (
                    key in _NESTED_SECTIONS
                    and isinstance(value, Mapping)
                    and isinstance(base.get(key), Mapping)
                    and "preset" not in value
                ):
                    base[key] = _merge_section(base[key], value)
                else:
                    base[key] = value
            data = base
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fleet fields {unknown!r}; known: {sorted(known)} + ['preset']"
            )
        if "topology" not in data:
            raise ValueError("fleet section needs a 'topology' (or a 'preset')")
        kwargs: dict[str, Any] = {
            "topology": FleetTopology.from_dict(data.pop("topology"))
        }
        if "workload" in data:
            kwargs["workload"] = WorkloadConfig.from_dict(data.pop("workload"))
        if "migration" in data:
            kwargs["migration"] = MigrationConfig(**dict(data.pop("migration")))
        if "steering" in data:
            kwargs["steering"] = SteeringConfig(**dict(data.pop("steering")))
        kwargs.update(data)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"invalid fleet section: {exc}") from exc


# -- presets -------------------------------------------------------------------

FLEETS = Registry("fleet preset")


@FLEETS.register("small")
def _small() -> dict[str, Any]:
    """2 shards x 2 nodes x 2 chains — the smoke/differential-test fleet."""
    return {
        "topology": FleetTopology.uniform(2, nodes=2, chains_per_node=2).to_dict(),
        "workload": WorkloadConfig(
            peak_rate_pps=1.2e6,
            period_s=64.0,
            flash=FlashCrowdConfig(probability=0.05, multiplier=2.5),
            churn=ChurnConfig(
                arrivals_per_cycle=0.5, departure_prob=0.1, max_chains=16
            ),
        ).to_dict(),
        "migration": _config_dict(MigrationConfig(capacity_per_node=4)),
        "cycles": 6,
        "sync_every": 4,
    }


@FLEETS.register("medium")
def _medium() -> dict[str, Any]:
    """3 shards x 4 nodes x 2 chains with diurnal load and churn."""
    return {
        "topology": FleetTopology.uniform(3, nodes=4, chains_per_node=2).to_dict(),
        "workload": WorkloadConfig(
            peak_rate_pps=1.5e6,
            period_s=128.0,
            flash=FlashCrowdConfig(probability=0.03, multiplier=3.0),
            churn=ChurnConfig(
                arrivals_per_cycle=1.0, departure_prob=0.08, max_chains=48
            ),
        ).to_dict(),
        "cycles": 8,
        "sync_every": 4,
    }


@FLEETS.register("wan")
def _wan() -> dict[str, Any]:
    """4 WAN sites on a ring + express chord — routed multi-hop migrations.

    Thin, long-haul links make cross-site transfers expensive and most
    site pairs non-adjacent, so migration costs are dominated by the
    routed path (hop count, bottleneck bandwidth) rather than the flat
    full-mesh link — the shape the topology-aware placement baselines
    are measured on.
    """
    return {
        "topology": FleetTopology.wan(4, nodes=2, chains_per_node=2).to_dict(),
        "workload": WorkloadConfig(
            peak_rate_pps=1.2e6,
            period_s=64.0,
            flash=FlashCrowdConfig(probability=0.05, multiplier=2.5),
            churn=ChurnConfig(
                arrivals_per_cycle=0.5, departure_prob=0.1, max_chains=24
            ),
        ).to_dict(),
        "migration": _config_dict(MigrationConfig(capacity_per_node=4)),
        "cycles": 6,
        "sync_every": 4,
    }


@FLEETS.register("datacenter")
def _datacenter() -> dict[str, Any]:
    """4 shards x 8 nodes x 4 chains — the ``fleet_scale`` bench shape."""
    return {
        "topology": FleetTopology.uniform(4, nodes=8, chains_per_node=4).to_dict(),
        "workload": WorkloadConfig(
            peak_rate_pps=1.8e6,
            period_s=256.0,
            flash=FlashCrowdConfig(probability=0.02, multiplier=3.0),
        ).to_dict(),
        "migration": _config_dict(MigrationConfig(budget_per_cycle=4)),
        "cycles": 8,
        "sync_every": 8,
    }
