"""Zero-copy shard telemetry: preallocated shared-memory arenas.

The lockstep fleet paid one pickled :class:`~repro.fleet.shard.ShardReport`
per shard per cycle — nested dataclasses serialized through the pipe on
the gather critical path.  A :class:`TelemetryArena` replaces that body
with a fixed-layout ``multiprocessing.shared_memory`` segment of float64
rows: the worker writes telemetry in place after each run and the pipe
carries only a tiny ack, so gather on the coordinator side is an array
view + scalar copy instead of unpickling.

Layout
------
Every value is a float64 (the integer fields — counts, violations, batch
sizes — stay far below 2**53, so the round trip through float64 is
exact).  The segment holds :data:`BANKS` identical banks, double-buffered
for the pipelined cycle (the coordinator may still be reading cycle *t*'s
bank while the worker writes cycle *t+1*'s)::

    bank b:
      header    : generation, start, n_intervals, n_chains
      intervals : max_intervals x len(INTERVAL_FIELDS)
      chains    : max_chains    x (len(CHAIN_FIELDS) + len(KNOB_FIELDS))
      nodes     : n_nodes       x len(NODE_FIELDS)

Chain rows are ordered by sorted chain name — the same order
``ShardSim._chain_summaries`` emits — so the coordinator-side handle can
map rows back to names from its own ticket mirror without any name data
crossing the arena.  The ``generation`` header slot is the deploy/
undeploy counter: both pipe ends bump their copy on every deployment
command, and a mismatch in the ack means the row map desynced.

Lifecycle
---------
The creating side (the :class:`~repro.fleet.shard.ShardWorker` handle)
owns the segment: it creates, and later closes *and unlinks* it, so no
``/dev/shm`` segment outlives the handle even when the worker crashed.
The worker side only attaches and closes; the owner's explicit unlink is
the single point of reclamation (and the shared ``resource_tracker`` is
the backstop if the owning process itself dies first).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: Banks per arena (double-buffered: one being written, one being read).
BANKS = 2

#: Per-bank header slots.
HEADER_FIELDS = ("generation", "start", "n_intervals", "n_chains")

#: Columns of one per-interval telemetry row (attributes of
#: :class:`~repro.fleet.shard.IntervalRecord`; ``index`` is implicit as
#: ``start + row``).
INTERVAL_FIELDS = (
    "energy_j",
    "throughput_gbps",
    "offered_pps",
    "sla_violations",
    "chains",
)

#: Leading columns of one per-chain row (attributes of
#: :class:`~repro.fleet.shard.ChainSummary`).
CHAIN_FIELDS = (
    "node",
    "utilization",
    "throughput_gbps",
    "power_w",
    "offered_pps",
    "sla_ok",
    "state_bytes",
    "dma_bytes",
)

#: Trailing per-chain columns: the live knob settings (keys of the
#: summary's ``knobs`` mapping).
KNOB_FIELDS = ("cpu_share", "cpu_freq_ghz", "llc_fraction", "dma_mb", "batch_size")

#: Columns of one per-node row (attributes of
#: :class:`~repro.fleet.shard.NodeSummary`).
NODE_FIELDS = ("chains", "power_w", "utilization")

_CHAIN_WIDTH = len(CHAIN_FIELDS) + len(KNOB_FIELDS)
_ITEMSIZE = np.dtype(np.float64).itemsize


@dataclass(frozen=True)
class ArenaLayout:
    """Static shape of one shard's arena.

    Both pipe ends derive the layout from the same
    :class:`~repro.fleet.shard.ShardConfig` (see
    :func:`~repro.fleet.shard.arena_layout_for`), so no shape information
    ever crosses the pipe.
    """

    max_intervals: int
    max_chains: int
    n_nodes: int

    def __post_init__(self) -> None:
        if self.max_intervals < 1:
            raise ValueError("arena needs room for at least one interval row")
        if self.max_chains < 1:
            raise ValueError("arena needs room for at least one chain row")
        if self.n_nodes < 1:
            raise ValueError("arena needs at least one node row")

    @property
    def bank_floats(self) -> int:
        """float64 slots per bank."""
        return (
            len(HEADER_FIELDS)
            + self.max_intervals * len(INTERVAL_FIELDS)
            + self.max_chains * _CHAIN_WIDTH
            + self.n_nodes * len(NODE_FIELDS)
        )

    @property
    def nbytes(self) -> int:
        """Total segment size across all banks."""
        return BANKS * self.bank_floats * _ITEMSIZE


class TelemetryArena:
    """One shard's shared-memory telemetry segment, viewed as numpy banks.

    Use :meth:`create` on the owning (coordinator) side and
    :meth:`attach` on the worker side; never the constructor directly.
    """

    def __init__(
        self,
        layout: ArenaLayout,
        segment: shared_memory.SharedMemory,
        *,
        owner: bool,
    ):
        self.layout = layout
        self._segment = segment
        self._owner = owner
        self._closed = False
        flat = np.ndarray(
            (BANKS * layout.bank_floats,), dtype=np.float64, buffer=segment.buf
        )
        n_header = len(HEADER_FIELDS)
        n_ivals = layout.max_intervals * len(INTERVAL_FIELDS)
        n_chains = layout.max_chains * _CHAIN_WIDTH
        n_nodes = layout.n_nodes * len(NODE_FIELDS)
        self._banks: list[tuple[np.ndarray, ...]] = []
        for b in range(BANKS):
            o = b * layout.bank_floats
            header = flat[o : o + n_header]
            o += n_header
            intervals = flat[o : o + n_ivals].reshape(
                layout.max_intervals, len(INTERVAL_FIELDS)
            )
            o += n_ivals
            chains = flat[o : o + n_chains].reshape(layout.max_chains, _CHAIN_WIDTH)
            o += n_chains
            nodes = flat[o : o + n_nodes].reshape(layout.n_nodes, len(NODE_FIELDS))
            self._banks.append((header, intervals, chains, nodes))

    # -- lifecycle ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The OS-level segment name (what the worker attaches by)."""
        return self._segment.name

    @classmethod
    def create(cls, layout: ArenaLayout) -> "TelemetryArena":
        """Allocate a fresh (zero-filled) arena; the caller owns it."""
        segment = shared_memory.SharedMemory(create=True, size=layout.nbytes)
        return cls(layout, segment, owner=True)

    @classmethod
    def attach(cls, name: str, layout: ArenaLayout) -> "TelemetryArena":
        """Map an existing arena by name (worker side; does not own it).

        On Python < 3.13 attaching re-registers the segment with the
        resource tracker, but workers share the parent's tracker (its fd
        travels in the fork/spawn preparation data), whose cache is a
        set — so the duplicate registration is a no-op and the owner's
        single ``unlink`` still retires the name exactly once.
        """
        return cls(layout, shared_memory.SharedMemory(name=name), owner=False)

    def close(self) -> None:
        """Drop the numpy views and unmap the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._banks = []
        self._segment.close()

    def unlink(self) -> None:
        """Reclaim the OS segment (owner side; tolerates a prior unlink)."""
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    # -- bank views --------------------------------------------------------

    def header(self, bank: int) -> np.ndarray:
        """The ``(generation, start, n_intervals, n_chains)`` header row."""
        return self._banks[bank][0]

    def intervals(self, bank: int) -> np.ndarray:
        """``(max_intervals, len(INTERVAL_FIELDS))`` view of one bank."""
        return self._banks[bank][1]

    def chains(self, bank: int) -> np.ndarray:
        """``(max_chains, CHAIN+KNOB columns)`` view of one bank."""
        return self._banks[bank][2]

    def nodes(self, bank: int) -> np.ndarray:
        """``(n_nodes, len(NODE_FIELDS))`` view of one bank."""
        return self._banks[bank][3]

    # -- the write path (worker side) --------------------------------------

    def store_report(self, bank: int, generation: int, report) -> None:
        """Write one shard report into a bank.

        ``report`` is duck-typed (any object shaped like
        :class:`~repro.fleet.shard.ShardReport`) so this module never
        imports the shard module it feeds.  Chain rows land in the order
        ``report.chains`` arrives in — sorted by name, per
        ``ShardSim._chain_summaries`` — which is the contract the
        coordinator-side row map relies on.
        """
        if not 0 <= bank < BANKS:
            raise ValueError(f"bank must be in [0, {BANKS}), got {bank}")
        layout = self.layout
        if len(report.intervals) > layout.max_intervals:
            raise ValueError(
                f"arena is sized for {layout.max_intervals} interval rows "
                f"per run, got {len(report.intervals)}"
            )
        if len(report.chains) > layout.max_chains:
            raise ValueError(
                f"arena is sized for {layout.max_chains} chain rows, "
                f"shard hosts {len(report.chains)}"
            )
        if len(report.nodes) != layout.n_nodes:
            raise ValueError(
                f"arena expects {layout.n_nodes} node rows, "
                f"got {len(report.nodes)}"
            )
        header, intervals, chains, nodes = self._banks[bank]
        for j, row in enumerate(report.intervals):
            for k, fieldname in enumerate(INTERVAL_FIELDS):
                intervals[j, k] = float(getattr(row, fieldname))
        for i, chain in enumerate(report.chains):
            for k, fieldname in enumerate(CHAIN_FIELDS):
                chains[i, k] = float(getattr(chain, fieldname))
            for k, fieldname in enumerate(KNOB_FIELDS):
                chains[i, len(CHAIN_FIELDS) + k] = float(chain.knobs[fieldname])
        for j, node in enumerate(report.nodes):
            for k, fieldname in enumerate(NODE_FIELDS):
                nodes[j, k] = float(getattr(node, fieldname))
        header[0] = float(generation)
        header[1] = float(report.intervals[0].index) if report.intervals else 0.0
        header[2] = float(len(report.intervals))
        header[3] = float(len(report.chains))
