"""The fleet's global control loop: gather, decide, scatter.

Each coordinator cycle runs every shard ``sync_every`` control intervals
(concurrently, on the process backend), gathers the per-shard
:class:`~repro.fleet.shard.ShardReport` summaries, and makes the global
decisions the single-cluster controllers cannot:

* **churn** — admit Poisson chain arrivals onto the least-loaded nodes
  and retire departing chains (:meth:`~repro.fleet.workload.WorkloadConfig.churn_events`);
* **cross-shard chain migration** — the configured
  :data:`~repro.fleet.placement.PLACEMENTS` policy (``watermark``:
  flow-affine :func:`~repro.nfv.cluster.consolidation_plan`; ``greedy``
  / ``genetic``: topology-aware routed-energy searchers) proposes the
  fleet-wide target placement, and each proposed move is accepted only
  when its estimated energy gain beats the migration cost model —
  priced along the :class:`~repro.fleet.routing.RoutingTable` path for
  cross-shard moves — and the target has SLA headroom (see
  :class:`~repro.fleet.spec.MigrationConfig`);
* **SDN knob steering** — watermark rules on each chain's bottleneck
  utilization, scattered back as per-chain knob updates.

Every decision is a deterministic function of the gathered reports and
the counter-based churn stream, so a seeded run is bit-identical across
backends and worker counts.  With ``pipeline_depth=1`` (the default) the
decide phase is pipelined: while the coordinator plans cycle *t* from
its gathered telemetry, the shards are already stepping cycle *t+1*'s
intervals — safe because workload draws are counter-based and
placement-independent — and the planned migration/knob commands are
applied at the next interval boundary (bounded staleness: every decision
lands exactly one cycle later than in lockstep mode, on both backends
alike, so the differential guarantee is preserved depth-for-depth).
:func:`run_fleet` is the facade the CLI and tests share; its
:class:`FleetResult` artifact records the per-interval fleet energy/SLA
series, the migration log and the churn history.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.obs import clock
from repro.fleet.shard import (
    ChainSummary,
    ChainTicket,
    LocalShard,
    NodeSummary,
    ShardConfig,
    ShardReport,
    ShardWorker,
    kind_nfs,
)
from repro.fleet.placement import PLACEMENTS
from repro.fleet.routing import RoutingTable
from repro.fleet.spec import FleetSpec
from repro.fleet.topology import CHAIN_KINDS

#: Fleet-artifact schema version (bump on layout changes).
FLEET_FORMAT_VERSION = 1


@dataclass
class FleetResult:
    """Structured, JSON-native outcome of one fleet run.

    ``metrics`` is the rolling per-cycle observability series (one
    snapshot of the :mod:`repro.obs` registry per coordinator cycle) —
    empty unless the run had instrumentation enabled.  It carries
    wall-clock-derived values (cycle latency, chain-intervals/sec), so
    :meth:`comparable` excludes it alongside ``elapsed_s``.
    """

    fleet: dict[str, Any]
    intervals: list[dict[str, Any]]
    migrations: list[dict[str, Any]]
    churn: list[dict[str, Any]]
    cycles: list[dict[str, Any]]
    totals: dict[str, Any]
    elapsed_s: float = 0.0
    metrics: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (round-trips through :meth:`from_dict`)."""
        return {
            "format_version": FLEET_FORMAT_VERSION,
            "fleet": dict(self.fleet),
            "intervals": [dict(r) for r in self.intervals],
            "migrations": [dict(m) for m in self.migrations],
            "churn": [dict(c) for c in self.churn],
            "cycles": [dict(c) for c in self.cycles],
            "totals": dict(self.totals),
            "elapsed_s": self.elapsed_s,
            "metrics": [dict(m) for m in self.metrics],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetResult":
        """Rebuild a result from :meth:`to_dict` output."""
        version = data.get("format_version")
        if version != FLEET_FORMAT_VERSION:
            raise ValueError(f"unsupported fleet format_version {version!r}")
        return cls(
            fleet=dict(data["fleet"]),
            intervals=[dict(r) for r in data["intervals"]],
            migrations=[dict(m) for m in data["migrations"]],
            churn=[dict(c) for c in data["churn"]],
            cycles=[dict(c) for c in data["cycles"]],
            totals=dict(data["totals"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            metrics=[dict(m) for m in data.get("metrics", [])],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> Path:
        """Write the artifact; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "FleetResult":
        """Read an artifact written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def comparable(self) -> dict[str, Any]:
        """The determinism-relevant payload (everything but wall clock).

        The differential tests compare this across backends: identical
        telemetry, SLA violations and migration log mean the run was
        bit-reproducible.  The executing backend and wall clock are the
        only fields allowed to differ.
        """
        out = self.to_dict()
        del out["elapsed_s"]
        del out["metrics"]
        out["fleet"] = dict(out["fleet"])
        del out["fleet"]["backend"]
        return out


@dataclass(frozen=True)
class _Move:
    """One accepted migration decision.

    ``path`` is the routed shard sequence the transfer travels
    (``(src_shard, ..., dst_shard)`` for cross-shard moves, the single
    shard for intra-shard moves); ``path_latency_s`` and
    ``bottleneck_gbps`` describe that path's summed latency and
    thinnest link.
    """

    chain: str
    src: tuple[str, int]
    dst: tuple[str, int]
    gain_j: float
    cost_j: float
    reason: str
    path: tuple[str, ...]
    path_latency_s: float
    bottleneck_gbps: float


@dataclass(frozen=True)
class _CyclePlan:
    """One cycle's decisions, computed without touching any handle.

    Planning is pure — no pipe traffic, no coordinator-state mutation —
    so on the pipelined path it can overlap the shards stepping the next
    cycle; :meth:`FleetCoordinator._apply_cycle` scatters it at the
    following interval boundary.  ``cycle``/``interval`` identify the
    reported cycle the plan was computed from (what the logs record),
    regardless of when it is applied.
    """

    cycle: int
    interval: int
    departures: tuple[tuple[str, str], ...]  # (chain, shard)
    moves: tuple[_Move, ...]
    arrivals: tuple[tuple[str, ChainTicket], ...]  # (shard, ticket)
    knob_updates: tuple[tuple[str, dict[str, dict[str, Any]]], ...]


class FleetCoordinator:
    """Drives a fleet of shard workers through the global control loop."""

    def __init__(
        self,
        fleet: FleetSpec,
        *,
        sla: str = "energy_efficiency",
        sla_params: Mapping[str, Any] | None = None,
        interval_s: float = 1.0,
        seed: int = 0,
        backend: str | None = None,
        mp_context: str | None = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.fleet = fleet
        self.sla = sla
        self.sla_params = dict(sla_params or {})
        self.interval_s = float(interval_s)
        self.seed = int(seed)
        self.backend = backend or fleet.backend
        topo = fleet.topology
        #: Global node index: position in ``topology.flatten()``.
        self._global_nodes = topo.flatten()
        self._global_index = {
            key: g for g, key in enumerate(self._global_nodes)
        }
        #: All-pairs routed paths over the inter-shard link graph; the
        #: migration cost model prices every cross-shard move along its
        #: routed hops (one hop on a full mesh — the pre-graph model).
        self._routing = RoutingTable(topo)
        self._placer = PLACEMENTS.get(fleet.placement)(
            fleet=fleet,
            routing=self._routing,
            global_nodes=self._global_nodes,
            global_index=self._global_index,
            interval_s=self.interval_s,
            seed=self.seed,
        )
        # Initial deployment: chains_per_node per node, chain kinds
        # cycling per the shard spec, consecutive chains sharing a flow
        # group (the co-location affinity consolidation acts on).
        group = max(1, fleet.workload.flow_group_size)
        counter = 0
        tickets: dict[str, list[ChainTicket]] = {s.name: [] for s in topo.shards}
        self._placement: dict[str, tuple[str, int]] = {}
        self._meta: dict[str, ChainTicket] = {}
        for shard in topo.shards:
            for node in range(shard.nodes):
                for slot in range(shard.chains_per_node):
                    name = f"{shard.name}-n{node}-c{slot}"
                    ticket = ChainTicket(
                        name=name,
                        nfs=kind_nfs(shard.chain_kind, counter),
                        flow=f"fg{counter // group}",
                        node=node,
                    )
                    tickets[shard.name].append(ticket)
                    self._placement[name] = (shard.name, node)
                    self._meta[name] = ticket
                    counter += 1
        self._dynamic: set[str] = set()
        self._arrivals_admitted = 0
        self._interval = 0
        self._cycle = 0
        self._records: list[dict[str, Any]] = []
        self._migrations: list[dict[str, Any]] = []
        self._churn_log: list[dict[str, Any]] = []
        self._cycle_log: list[dict[str, Any]] = []
        self._migration_energy_j = 0.0
        #: Observability bookkeeping.  ``_t0`` anchors the internally
        #: measured ``elapsed_s`` (see :meth:`result`); the rest feeds
        #: the per-cycle metrics snapshots — all wall-clock-derived, none
        #: of it touches the seeded decision path.
        self._t0 = time.perf_counter()
        self._last_snap_t: float | None = None
        self._records_mark = 0
        self._chain_intervals_total = 0
        self._metrics_log: list[dict[str, Any]] = []
        make = LocalShard if self.backend == "local" else ShardWorker
        kwargs = {} if self.backend == "local" else {"mp_context": mp_context}
        self.handles: dict[str, Any] = {}
        try:
            for shard in topo.shards:
                config = ShardConfig(
                    name=shard.name,
                    n_nodes=shard.nodes,
                    seed=self.seed,
                    interval_s=self.interval_s,
                    sla=self.sla,
                    sla_params=self.sla_params,
                    workload=fleet.workload.to_dict(),
                    parked_power_w=fleet.migration.parked_power_w,
                    initial_chains=tuple(tickets[shard.name]),
                    # Telemetry-arena capacity: one run reply holds
                    # sync_every interval rows; admission never exceeds
                    # the per-node capacity bound.
                    arena_intervals=fleet.sync_every,
                    arena_chains=shard.nodes * fleet.migration.capacity_per_node,
                    trace=obs.enabled(),
                )
                self.handles[shard.name] = make(config, **kwargs)
        except BaseException:
            self.close()
            raise
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release every shard handle (reaps worker processes)."""
        self._closed = True
        for handle in getattr(self, "handles", {}).values():
            handle.close()

    # -- the global loop ---------------------------------------------------

    @property
    def interval(self) -> int:
        """Global control intervals completed so far."""
        return self._interval

    @property
    def n_chains(self) -> int:
        """Chains currently deployed across the fleet."""
        return len(self._placement)

    def run_cycles(self, n_cycles: int) -> None:
        """Run ``n_cycles`` gather/decide/scatter cycles.

        With ``pipeline_depth=1`` the decide phase of cycle *t* overlaps
        the shards stepping cycle *t+1* (its commands are applied at the
        next interval boundary — bounded staleness).  The pipeline fully
        drains before this method returns, so the final gathered cycle
        of each call is decided and applied immediately; results depend
        on how a run is chunked into ``run_cycles`` calls, but are
        bit-identical across backends for the same chunking.
        """
        if self._closed:
            raise RuntimeError("coordinator is closed")
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        if self.fleet.pipeline_depth == 0:
            for _ in range(n_cycles):
                self._one_cycle()
            return
        # Depth 1: double-buffered.  Each iteration kicks off the next
        # run before deciding the previous cycle, so planning (and, on
        # the process backend, the coordinator's entire decide phase)
        # overlaps the shards' stepping.  Scatter commands only ever go
        # out between finish_run and the next begin_run — never while a
        # run is in flight — keeping the pipe protocol strictly
        # request/reply ordered.
        handles = list(self.handles.values())
        n = self.fleet.sync_every
        pending: tuple[list[ShardReport], int, int] | None = None
        cycle = self._cycle
        for _ in range(n_cycles):
            with obs.span("fleet/cycle", cycle=cycle):
                for handle in handles:
                    handle.begin_run(self._interval, n)
                if pending is not None:
                    with obs.span("fleet/plan", cycle=pending[1]):
                        plan = self._plan_cycle(*pending)
                else:
                    plan = None
                with obs.span("fleet/gather", interval=self._interval):
                    reports = [handle.finish_run() for handle in handles]
                self._merge_records(reports)
                self._interval += n
                if plan is not None:
                    self._apply_cycle(plan)
                pending = (reports, cycle, self._interval)
                cycle += 1
            # Spans only move over the pipe between finish_run and the
            # next begin_run — never while a run is in flight — so the
            # drain rides the same request/reply ordering as scatter.
            if obs._ENABLED:
                self._drain_worker_spans()
        # The drain half-cycle: plan+apply for the last gathered reports.
        # Not a "fleet/cycle" span — dashboards count those as cycles run.
        with obs.span("fleet/drain", cycle=pending[1]):
            with obs.span("fleet/plan", cycle=pending[1]):
                plan = self._plan_cycle(*pending)
            self._apply_cycle(plan)
        if obs._ENABLED:
            self._drain_worker_spans()

    def _one_cycle(self) -> None:
        """One lockstep cycle (``pipeline_depth=0``): gather, then decide
        and scatter before the shards step again."""
        handles = list(self.handles.values())
        n = self.fleet.sync_every
        with obs.span("fleet/cycle", cycle=self._cycle):
            for handle in handles:
                handle.begin_run(self._interval, n)
            with obs.span("fleet/gather", interval=self._interval):
                reports = [handle.finish_run() for handle in handles]
            self._merge_records(reports)
            self._interval += n
            with obs.span("fleet/plan", cycle=self._cycle):
                plan = self._plan_cycle(reports, self._cycle, self._interval)
            self._apply_cycle(plan)
        if obs._ENABLED:
            self._drain_worker_spans()

    def _plan_cycle(
        self, reports: list[ShardReport], cycle: int, interval: int
    ) -> _CyclePlan:
        """Decide one cycle from its gathered reports (pure).

        Replays the exact lockstep decision order — churn departures
        free capacity, the consolidation pass plans against the
        post-departure occupancy, arrivals land on the post-migration
        layout, steering routes via the post-migration placement — but
        against local copies of the placement/occupancy state, so no
        coordinator state mutates and no pipe traffic happens until
        :meth:`_apply_cycle`.
        """
        summaries: dict[str, ChainSummary] = {}
        node_info: dict[tuple[str, int], NodeSummary] = {}
        for report in reports:
            for chain in report.chains:
                summaries[chain.name] = chain
            for node in report.nodes:
                node_info[(node.shard, node.node)] = node

        # One churn draw per cycle: departures free capacity before the
        # consolidation pass, arrivals land on the post-migration layout.
        n_arrivals, departure_names = self.fleet.workload.churn_events(
            self.seed, cycle, sorted(self._dynamic), len(self._placement)
        )
        departed = set(departure_names)
        departures = tuple(
            (name, self._placement[name][0]) for name in departure_names
        )
        placement = {
            name: key
            for name, key in self._placement.items()
            if name not in departed
        }
        counts = [0] * len(self._global_nodes)
        for key in placement.values():
            counts[self._global_index[key]] += 1
        moves = tuple(
            self._plan_migrations(
                cycle, summaries, node_info, departed, placement, counts
            )
        )
        for move in moves:
            placement[move.chain] = move.dst
        arrivals: list[tuple[str, ChainTicket]] = []
        if n_arrivals:
            capacity = self.fleet.migration.capacity_per_node
            group = max(1, self.fleet.workload.flow_group_size)
            k = self._arrivals_admitted
            for _ in range(n_arrivals):
                open_nodes = [
                    g for g in range(len(counts)) if counts[g] < capacity
                ]
                if not open_nodes:
                    break
                target = min(open_nodes, key=lambda g: (counts[g], g))
                shard, node = self._global_nodes[target]
                ticket = ChainTicket(
                    name=f"dyn-{cycle}-{k}",
                    nfs=kind_nfs(CHAIN_KINDS[k % len(CHAIN_KINDS)]),
                    flow=f"fg-dyn-{k // group}",
                    node=node,
                )
                arrivals.append((shard, ticket))
                counts[target] += 1
                k += 1
        knob_updates = self._plan_knobs(summaries, departed, placement)
        return _CyclePlan(
            cycle=cycle,
            interval=interval,
            departures=departures,
            moves=moves,
            arrivals=tuple(arrivals),
            knob_updates=knob_updates,
        )

    def _apply_cycle(self, plan: _CyclePlan) -> None:
        """Scatter one plan's decisions and write the logs.

        On the pipelined path this runs one cycle after the plan's
        reports were gathered; every log row carries the plan's own
        cycle/interval stamps, so the artifact shape is depth-invariant.
        """
        with obs.span("fleet/apply", cycle=plan.cycle):
            self._apply_cycle_inner(plan)
        self._cycle += 1
        if obs._ENABLED:
            self._snapshot_metrics(plan)

    def _apply_cycle_inner(self, plan: _CyclePlan) -> None:
        for name, shard in plan.departures:
            self._placement.pop(name)
            self.handles[shard].undeploy(name)
            self._dynamic.discard(name)
            self._meta.pop(name, None)
            self._churn_log.append(
                {
                    "cycle": plan.cycle,
                    "interval": plan.interval,
                    "event": "departure",
                    "chain": name,
                    "shard": shard,
                }
            )
        self._apply_migrations(plan.moves, plan.cycle, plan.interval)
        for shard, ticket in plan.arrivals:
            self.handles[shard].deploy(ticket)
            self._placement[ticket.name] = (shard, ticket.node)
            self._meta[ticket.name] = ticket
            self._dynamic.add(ticket.name)
            self._arrivals_admitted += 1
            self._churn_log.append(
                {
                    "cycle": plan.cycle,
                    "interval": plan.interval,
                    "event": "arrival",
                    "chain": ticket.name,
                    "shard": shard,
                    "node": ticket.node,
                }
            )
        for shard, updates in plan.knob_updates:
            self.handles[shard].set_knobs(updates)
        self._cycle_log.append(
            {
                "cycle": plan.cycle,
                "interval": plan.interval,
                "migrations": len(plan.moves),
                "migration_energy_j": sum(m.cost_j for m in plan.moves),
                "arrivals": len(plan.arrivals),
                "departures": len(plan.departures),
                "knob_updates": sum(
                    len(updates) for _, updates in plan.knob_updates
                ),
                "chains": len(self._placement),
            }
        )

    def _merge_records(self, reports: list[ShardReport]) -> None:
        """Sum per-shard interval rows into fleet-wide records."""
        with obs.span("fleet/merge", reports=len(reports)):
            self._merge_records_inner(reports)

    def _merge_records_inner(self, reports: list[ShardReport]) -> None:
        by_index: dict[int, dict[str, Any]] = {}
        for report in reports:
            for row in report.intervals:
                rec = by_index.setdefault(
                    row.index,
                    {
                        "index": row.index,
                        "energy_j": 0.0,
                        "throughput_gbps": 0.0,
                        "offered_pps": 0.0,
                        "sla_violations": 0,
                        "chains": 0,
                    },
                )
                rec["energy_j"] += row.energy_j
                rec["throughput_gbps"] += row.throughput_gbps
                rec["offered_pps"] += row.offered_pps
                rec["sla_violations"] += row.sla_violations
                rec["chains"] += row.chains
        self._records.extend(by_index[i] for i in sorted(by_index))

    # -- migration ---------------------------------------------------------

    def _plan_migrations(
        self,
        cycle: int,
        summaries: dict[str, ChainSummary],
        node_info: dict[tuple[str, int], NodeSummary],
        departed: set[str],
        placement: Mapping[str, tuple[str, int]],
        counts: list[int],
    ) -> list[_Move]:
        """Policy proposes, the cost model disposes: keep net-positive moves.

        The configured :data:`~repro.fleet.placement.PLACEMENTS` policy
        proposes the fleet-wide desired placement (``watermark`` is the
        original flow-affine ``consolidation_plan``); each differing
        chain becomes a candidate move scored by the
        :class:`~repro.fleet.spec.MigrationConfig` model over its routed
        path, and the best ``budget_per_cycle`` net-positive moves that
        keep SLA headroom at the target are applied.  ``placement`` and
        ``counts`` are the *authoritative* post-departure chain
        locations and per-node occupancy — on the pipelined path the
        gathered ``summaries`` are one cycle stale (a chain migrated by
        the previous plan still reports its old node), so move sources
        come from ``placement``; the telemetry only feeds the scoring.
        ``counts`` is mutated in place as moves are accepted, so the
        caller's arrival pass sees the post-migration occupancy.
        """
        mig = self.fleet.migration
        if mig.budget_per_cycle <= 0 or len(self._global_nodes) < 2:
            return []
        names = sorted(
            n for n in summaries if n not in departed and n in placement
        )
        if not names:
            return []
        # Departed chains must not influence any score (e.g. a phantom
        # co-location bonus for a flow-mate that no longer exists).
        summaries = {n: summaries[n] for n in names}
        desired = self._placer.desired(
            cycle=cycle,
            names=names,
            summaries=summaries,
            placement=placement,
            counts=counts,
            node_info=node_info,
        )
        if desired is None:
            return []
        candidates: list[
            tuple[float, str, int, float, float, str, tuple[str, ...]]
        ] = []
        for name in names:
            chain = summaries[name]
            cur = self._global_index[placement[name]]
            dst = desired[name]
            if dst == cur:
                continue
            gain, cost, reason, path = self._score_move(
                chain,
                placement[name],
                cur,
                dst,
                counts,
                summaries,
                node_info,
                placement,
            )
            if (
                mig.max_path_latency_s > 0.0
                and len(path) > 1
                and self._routing.path_latency_s(path[0], path[-1])
                > mig.max_path_latency_s
            ):
                if obs._ENABLED:
                    obs.inc("fleet/migrations/veto[path_latency]")
                continue
            net = gain - cost
            if net <= 0:
                if obs._ENABLED:
                    obs.inc("fleet/migrations/veto[net_negative]")
                continue
            candidates.append((net, name, dst, gain, cost, reason, path))
        candidates.sort(key=lambda t: (-t[0], t[1]))
        moves: list[_Move] = []
        target_util = {
            self._global_index[key]: info.utilization
            for key, info in node_info.items()
        }
        for i, (net, name, dst, gain, cost, reason, path) in enumerate(
            candidates
        ):
            if len(moves) >= mig.budget_per_cycle:
                if obs._ENABLED:
                    obs.inc(
                        "fleet/migrations/veto[budget]", len(candidates) - i
                    )
                break
            chain = summaries[name]
            cur = self._global_index[placement[name]]
            if counts[dst] >= mig.capacity_per_node:
                if obs._ENABLED:
                    obs.inc("fleet/migrations/veto[capacity]")
                continue
            # SLA headroom: the target's binding stage plus the incoming
            # chain's must stay below the watermark.
            if target_util.get(dst, 0.0) + chain.utilization > mig.headroom:
                if obs._ENABLED:
                    obs.inc("fleet/migrations/veto[headroom]")
                continue
            src_shard = placement[name][0]
            dst_shard = self._global_nodes[dst][0]
            cross = dst_shard != src_shard
            moves.append(
                _Move(
                    chain=name,
                    src=placement[name],
                    dst=self._global_nodes[dst],
                    gain_j=gain,
                    cost_j=cost,
                    reason=reason,
                    path=path,
                    path_latency_s=(
                        self._routing.path_latency_s(src_shard, dst_shard)
                        if cross
                        else 0.0
                    ),
                    bottleneck_gbps=(
                        self._routing.path_bottleneck_gbps(src_shard, dst_shard)
                        if cross
                        else 0.0
                    ),
                )
            )
            counts[dst] += 1
            counts[cur] -= 1
            target_util[dst] = target_util.get(dst, 0.0) + chain.utilization
            if obs._ENABLED:
                obs.inc("fleet/migrations/accepted")
        return moves

    def _score_move(
        self,
        chain: ChainSummary,
        src_key: tuple[str, int],
        cur: int,
        dst: int,
        counts: list[int],
        summaries: dict[str, ChainSummary],
        node_info: dict[tuple[str, int], NodeSummary],
        placement: Mapping[str, tuple[str, int]],
    ) -> tuple[float, float, str, tuple[str, ...]]:
        """(gain_j, cost_j, reason, path) of one candidate move.

        ``src_key`` is the chain's authoritative current location (its
        summary may lag one cycle on the pipelined path), and the
        co-location lookup reads the authoritative ``placement`` book
        for the same reason: a flow-mate migrated by the previous plan
        must count at its *new* node, not where its stale summary still
        reports it.  ``path`` is the routed shard sequence the transfer
        travels (just the one shard for intra-shard moves).
        """
        mig = self.fleet.migration
        dst_shard, _dst_node = self._global_nodes[dst]
        horizon_s = mig.amortize_intervals * self.interval_s
        # Gain: vacating a node drops it to the parked floor (minus the
        # dynamic power the chain re-adds at its target); otherwise only
        # the flow-group LLC affinity bonus applies.
        marginal_w = mig.dynamic_fraction * chain.power_w
        src_info = node_info.get(src_key)
        reason = "colocate"
        gain_j = 0.0
        if counts[cur] == 1 and src_info is not None:
            gain_j = max(
                0.0, src_info.power_w - mig.parked_power_w - marginal_w
            ) * horizon_s
            reason = "vacate"
        dst_key = self._global_nodes[dst]
        same_flow_at_dst = any(
            other.flow == chain.flow
            and placement.get(other.name) == dst_key
            and other.name != chain.name
            for other in summaries.values()
        )
        if same_flow_at_dst:
            gain_j += mig.colocation_gain_j
        # Cost: redeploy overhead, plus shipping resident state + DMA
        # buffer along the routed path for cross-shard moves — each hop
        # serializes the payload at its own link rate and keeps the
        # transport powered (``link_power_w``) for its share of the
        # transfer.  On a full mesh the path is the single direct link,
        # reproducing the pre-graph cost bit-for-bit.
        cost_j = mig.setup_j
        path: tuple[str, ...] = (src_key[0],)
        if dst_shard != src_key[0]:
            path = self._routing.path(src_key[0], dst_shard)
            for link in self._routing.path_links(src_key[0], dst_shard):
                transfer_s = (
                    (chain.state_bytes + chain.dma_bytes) * 8.0
                    / (link.gbps * 1e9)
                    + link.latency_s
                )
                cost_j += transfer_s * mig.link_power_w
        return gain_j, cost_j, reason, path

    def _apply_migrations(
        self, moves: tuple[_Move, ...], cycle: int, interval: int
    ) -> None:
        for move in moves:
            src_shard, _ = move.src
            dst_shard, dst_node = move.dst
            ticket = self.handles[src_shard].undeploy(move.chain)
            self.handles[dst_shard].deploy(ticket.with_node(dst_node))
            self._placement[move.chain] = (dst_shard, dst_node)
            self._meta[move.chain] = ticket.with_node(dst_node)
            self._migration_energy_j += move.cost_j
            self._migrations.append(
                {
                    "cycle": cycle,
                    "interval": interval,
                    "chain": move.chain,
                    "src_shard": src_shard,
                    "src_node": move.src[1],
                    "dst_shard": dst_shard,
                    "dst_node": dst_node,
                    "gain_j": move.gain_j,
                    "cost_j": move.cost_j,
                    "reason": move.reason,
                    "path": list(move.path),
                    "hops": max(0, len(move.path) - 1),
                    "path_latency_s": move.path_latency_s,
                    "bottleneck_gbps": move.bottleneck_gbps,
                }
            )

    # -- knob steering -----------------------------------------------------

    def _plan_knobs(
        self,
        summaries: dict[str, ChainSummary],
        departed: set[str],
        placement: Mapping[str, tuple[str, int]],
    ) -> tuple[tuple[str, dict[str, dict[str, Any]]], ...]:
        from repro.nfv.knobs import DEFAULT_RANGES as ranges

        steering = self.fleet.steering
        if not steering.enabled:
            return ()
        # Cap targets at the hardware ranges the nodes will clamp to, so
        # a chain already pinned at the limits is not re-sent the same
        # futile update every cycle.  ``placement`` is the planned
        # post-migration layout, so an update for a migrating chain is
        # routed to its destination shard.
        share_max = min(steering.share_max, ranges.max_cpu_share)
        share_min = max(steering.share_min, ranges.min_cpu_share)
        per_shard: dict[str, dict[str, dict[str, Any]]] = {}
        for name in sorted(summaries):
            if name in departed or name not in placement:
                continue
            chain = summaries[name]
            knobs = dict(chain.knobs)
            if chain.utilization > steering.high_watermark:
                knobs["cpu_share"] = min(
                    knobs["cpu_share"] * steering.share_step, share_max
                )
                knobs["cpu_freq_ghz"] = min(
                    knobs["cpu_freq_ghz"] + steering.freq_step_ghz,
                    ranges.max_freq_ghz,
                )
            elif chain.utilization < steering.low_watermark:
                knobs["cpu_share"] = max(
                    knobs["cpu_share"] / steering.share_step, share_min
                )
                knobs["cpu_freq_ghz"] = max(
                    knobs["cpu_freq_ghz"] - steering.freq_step_ghz,
                    ranges.min_freq_ghz,
                )
            else:
                continue
            if knobs == dict(chain.knobs):
                continue
            shard, _node = placement[name]
            per_shard.setdefault(shard, {})[name] = knobs
        return tuple(sorted(per_shard.items()))

    # -- observability -----------------------------------------------------

    def _drain_worker_spans(self) -> None:
        """Pull buffered spans + counter deltas from every shard handle.

        Process-backend handles expose ``drain_spans`` (a pipe round
        trip); local handles run in-process and already share the
        registry/tracer, so they have nothing to drain.
        """
        tracer = obs.tracer()
        registry = obs.registry()
        for handle in self.handles.values():
            drain = getattr(handle, "drain_spans", None)
            if drain is None:
                continue
            events, counters = drain()
            if events and tracer is not None:
                tracer.ingest(events)
            if counters:
                registry.merge_counters(counters)
        if tracer is not None:
            tracer.flush()

    def _snapshot_metrics(self, plan: _CyclePlan) -> None:
        """Append one per-cycle snapshot to the rolling metrics series.

        Everything here is derived from already-recorded state plus the
        sanctioned clock — called strictly after the cycle's decisions
        are applied, so it cannot perturb a seeded run.

        On the pipelined path the merge order runs one cycle ahead of
        the apply order, so rows are claimed by interval stamp (records
        arrive index-sorted): each snapshot takes exactly its own
        cycle's rows no matter the pipeline depth.  Throughput is a
        running average over the whole run — a per-window rate would
        spike on the drain half-cycle, whose gather happened inside the
        previous window.
        """
        now = clock.perf_s()
        prev = self._last_snap_t if self._last_snap_t is not None else self._t0
        cycle_s = now - prev
        self._last_snap_t = now
        rows = []
        i = self._records_mark
        while i < len(self._records) and self._records[i]["index"] < plan.interval:
            rows.append(self._records[i])
            i += 1
        self._records_mark = i
        energy_j = sum(r["energy_j"] for r in rows)
        sla_violations = sum(r["sla_violations"] for r in rows)
        self._chain_intervals_total += sum(r["chains"] for r in rows)
        elapsed = now - self._t0
        reg = obs.registry()
        reg.observe("fleet/cycle_s", cycle_s)
        reg.gauge("fleet/chains", len(self._placement))
        snap = reg.snapshot()
        self._metrics_log.append(
            {
                "cycle": plan.cycle,
                "interval": plan.interval,
                "cycle_s": cycle_s,
                "chains": len(self._placement),
                "chain_intervals_per_s": (
                    self._chain_intervals_total / elapsed if elapsed > 0 else 0.0
                ),
                "energy_j": energy_j,
                "sla_violations": sla_violations,
                "migrations": len(self._migrations),
                "counters": snap["counters"],
                "histograms": snap["histograms"],
            }
        )
        tracer = obs.tracer()
        if tracer is not None:
            ts = clock.now_us()
            tracer.counter("fleet/energy_j", energy_j, ts=ts)
            tracer.counter("fleet/sla_violations", sla_violations, ts=ts)
            tracer.counter("fleet/migrations", len(self._migrations), ts=ts)
            tracer.counter("fleet/chains", len(self._placement), ts=ts)
            tracer.flush()

    # -- results -----------------------------------------------------------

    def result(self, elapsed_s: float | None = None) -> FleetResult:
        """Package everything recorded so far into a result artifact.

        ``elapsed_s`` defaults to the coordinator's own construction-to-
        now wall time (the sanctioned clock); pass a value only to
        override that measurement — the old ``elapsed_s=0.0`` default
        silently recorded zero for every caller that forgot to time the
        run themselves.
        """
        if elapsed_s is None:
            elapsed_s = time.perf_counter() - self._t0
        records = self._records
        sim_energy = sum(r["energy_j"] for r in records)
        throughputs = [r["throughput_gbps"] for r in records]
        horizon_s = len(records) * self.interval_s
        total_energy = sim_energy + self._migration_energy_j
        mean_thr = sum(throughputs) / len(throughputs) if throughputs else 0.0
        totals = {
            "intervals": len(records),
            "sim_energy_j": sim_energy,
            "migration_energy_j": self._migration_energy_j,
            "energy_j": total_energy,
            "mean_throughput_gbps": mean_thr,
            "mean_power_w": total_energy / horizon_s if horizon_s > 0 else 0.0,
            "energy_efficiency": (
                mean_thr / (total_energy / 1e3) if total_energy > 0 else 0.0
            ),
            "sla_violations": sum(r["sla_violations"] for r in records),
            "migrations": len(self._migrations),
            "migration_hops": sum(m["hops"] for m in self._migrations),
            "migration_path_latency_s": sum(
                m["path_latency_s"] for m in self._migrations
            ),
            "arrivals": sum(
                1 for c in self._churn_log if c["event"] == "arrival"
            ),
            "departures": sum(
                1 for c in self._churn_log if c["event"] == "departure"
            ),
            "final_chains": len(self._placement),
        }
        fleet_info = self.fleet.to_dict()
        fleet_info.update(
            {
                "backend": self.backend,
                "sla": self.sla,
                "sla_params": dict(self.sla_params),
                "interval_s": self.interval_s,
                "seed": self.seed,
            }
        )
        return FleetResult(
            fleet=fleet_info,
            intervals=[dict(r) for r in records],
            migrations=[dict(m) for m in self._migrations],
            churn=[dict(c) for c in self._churn_log],
            cycles=[dict(c) for c in self._cycle_log],
            totals=totals,
            elapsed_s=elapsed_s,
            metrics=[dict(m) for m in self._metrics_log],
        )


def run_fleet(
    spec,
    *,
    backend: str | None = None,
    cycles: int | None = None,
    pipeline_depth: int | None = None,
    placement: str | None = None,
    out_path=None,
    mp_context: str | None = None,
) -> FleetResult:
    """Run a scenario spec's fleet section end-to-end.

    ``spec`` is a :class:`~repro.scenario.spec.ScenarioSpec` whose
    ``fleet`` field holds the fleet section (inline or via a
    :data:`~repro.fleet.spec.FLEETS` preset).  ``backend`` / ``cycles``
    / ``pipeline_depth`` / ``placement`` override the section without
    editing the spec.  Writes the JSON artifact to ``out_path`` when
    given.
    """
    if getattr(spec, "fleet", None) is None:
        raise ValueError(
            f"scenario {spec.name!r} has no fleet section; add a 'fleet:' "
            "dict (e.g. {'preset': 'small'}) to the spec"
        )
    fleet = FleetSpec.from_mapping(spec.fleet)
    if cycles is not None:
        fleet = fleet.with_updates(cycles=cycles)
    if backend is not None:
        fleet = fleet.with_updates(backend=backend)
    if pipeline_depth is not None:
        fleet = fleet.with_updates(pipeline_depth=pipeline_depth)
    if placement is not None:
        fleet = fleet.with_updates(placement=placement)
    with FleetCoordinator(
        fleet,
        sla=spec.sla,
        sla_params=spec.sla_params,
        interval_s=spec.interval_s,
        seed=spec.seed,
        mp_context=mp_context,
    ) as coordinator:
        coordinator.run_cycles(fleet.cycles)
        result = coordinator.result()
    if out_path is not None:
        result.save(out_path)
    return result
