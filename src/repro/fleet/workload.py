"""Dynamic fleet workloads: diurnal curves, flash crowds, chain churn.

The single-cluster experiments drive each chain with one stateful
:class:`~repro.traffic.generators.TrafficGenerator`.  A fleet cannot do
that: chains *migrate* between shards (and between worker processes), so
any RNG state carried inside a generator would have to be shipped along
and replayed in exactly the same order for the run to stay reproducible.

Instead, every stochastic input here is **counter-based**: the draw for
chain ``c`` at global interval ``t`` comes from a fresh generator seeded
on ``(experiment seed, stream name, t)`` via :func:`interval_stream`.  A
chain's offered-load trajectory is therefore a pure function of the spec
— independent of which shard hosts it, of its migration history, and of
the worker count — which is what makes process-backed fleet runs
bit-identical to the in-process reference.

The load shapes themselves reuse :mod:`repro.traffic.generators`
(:class:`~repro.traffic.generators.DiurnalGenerator` for the day/night
curve); flash crowds multiply the base rate for a bounded window, and
Poisson churn (chain arrival/departure) is drawn per coordinator cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.traffic.generators import ConstantRateGenerator, DiurnalGenerator
from repro.utils.rng import hash_name

#: Load profiles a fleet workload may use.
PROFILES = ("constant", "diurnal")


def interval_stream(seed: int, name: str, index: int) -> np.random.Generator:
    """A fresh generator keyed on ``(seed, name, index)`` only.

    Counter-based randomness: no state survives between draws, so any
    component in any process reproduces the same stream from the same
    key.  ``name`` is hashed with the same order-independent FNV-1a as
    :class:`~repro.utils.rng.StreamFactory`, so streams for different
    names (and different indices) are statistically independent.
    """
    if index < 0:
        raise ValueError("interval index must be >= 0")
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(hash_name(name), index))
    return np.random.default_rng(seq)


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Sudden bounded load spikes on individual chains."""

    #: Per-chain, per-interval probability that a flash crowd starts.
    probability: float = 0.0
    multiplier: float = 3.0
    duration_intervals: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("flash probability must be in [0, 1]")
        if self.multiplier < 1.0:
            raise ValueError("flash multiplier must be >= 1")
        if self.duration_intervals < 1:
            raise ValueError("flash duration must be >= 1 interval")


@dataclass(frozen=True)
class ChurnConfig:
    """Poisson chain arrival/departure per coordinator cycle."""

    #: Poisson mean of new-chain arrivals per coordinator cycle.
    arrivals_per_cycle: float = 0.0
    #: Per-dynamic-chain departure probability per coordinator cycle.
    departure_prob: float = 0.0
    #: Hard cap on simultaneously deployed chains (admission control).
    max_chains: int = 256

    def __post_init__(self) -> None:
        if self.arrivals_per_cycle < 0:
            raise ValueError("arrival rate must be >= 0")
        if not 0.0 <= self.departure_prob <= 1.0:
            raise ValueError("departure probability must be in [0, 1]")
        if self.max_chains < 1:
            raise ValueError("max_chains must be >= 1")


@dataclass(frozen=True)
class WorkloadConfig:
    """The fleet's offered-load model, shared by every shard."""

    profile: str = "diurnal"
    peak_rate_pps: float = 1.5e6
    trough_fraction: float = 0.3
    period_s: float = 256.0
    noise_std: float = 0.03
    packet_bytes: float = 1518.0
    #: Consecutive chains per flow group (the co-location affinity unit
    #: ``consolidation_plan`` groups by).
    flow_group_size: int = 2
    flash: FlashCrowdConfig = field(default_factory=FlashCrowdConfig)
    churn: ChurnConfig = field(default_factory=ChurnConfig)

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown workload profile {self.profile!r}; options: {PROFILES}"
            )
        if self.peak_rate_pps <= 0:
            raise ValueError("peak rate must be positive")
        if not 0.0 <= self.trough_fraction <= 1.0:
            raise ValueError("trough fraction must be in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.noise_std < 0:
            raise ValueError("noise std must be >= 0")
        if self.packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        if self.flow_group_size < 1:
            raise ValueError("flow_group_size must be >= 1")
        # The base-shape generator is stateless (all randomness arrives
        # through the per-call rng), so one instance serves every chain
        # and interval; building it per draw would dominate the shard
        # stepping hot loop.
        object.__setattr__(self, "_base", self._base_generator())

    # -- per-interval draws ------------------------------------------------

    def _base_generator(self):
        if self.profile == "diurnal":
            return DiurnalGenerator(
                peak_rate_pps=self.peak_rate_pps,
                trough_fraction=self.trough_fraction,
                period_s=self.period_s,
                noise_std=self.noise_std,
            )
        return ConstantRateGenerator(self.peak_rate_pps)

    def flash_multiplier(self, seed: int, chain_name: str, index: int) -> float:
        """The flash-crowd factor for one chain at one interval.

        A crowd that started at any interval in the trailing
        ``duration_intervals`` window is still active; starts are
        counter-based draws, so the factor is a pure function of the key.
        """
        cfg = self.flash
        if cfg.probability <= 0.0:
            return 1.0
        for start in range(max(0, index - cfg.duration_intervals + 1), index + 1):
            rng = interval_stream(seed, f"fleet/flash/{chain_name}", start)
            if rng.random() < cfg.probability:
                return cfg.multiplier
        return 1.0

    def offered(
        self, seed: int, chain_name: str, index: int, dt_s: float
    ) -> tuple[float, float]:
        """Offered ``(pps, packet_bytes)`` for a chain at a global interval."""
        rng = interval_stream(seed, f"fleet/load/{chain_name}", index)
        rate = self._base.rate_at(index * dt_s, dt_s, rng)
        rate *= self.flash_multiplier(seed, chain_name, index)
        return float(rate), self.packet_bytes

    # -- churn -------------------------------------------------------------

    def churn_events(
        self, seed: int, cycle: int, dynamic_chains: list[str], total_chains: int
    ) -> tuple[int, list[str]]:
        """Arrival count and departing chain names for one coordinator cycle.

        Departures only ever touch the *dynamic* chains (those the churn
        process itself admitted), iterated in sorted-name order so the
        draw sequence is reproducible.  Arrivals respect ``max_chains``.
        """
        cfg = self.churn
        if cfg.arrivals_per_cycle <= 0 and cfg.departure_prob <= 0:
            return 0, []
        rng = interval_stream(seed, "fleet/churn", cycle)
        arrivals = (
            int(rng.poisson(cfg.arrivals_per_cycle))
            if cfg.arrivals_per_cycle > 0
            else 0
        )
        departures = [
            name
            for name in sorted(dynamic_chains)
            if cfg.departure_prob > 0 and rng.random() < cfg.departure_prob
        ]
        room = max(0, cfg.max_chains - (total_chains - len(departures)))
        return min(arrivals, room), departures

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; ``from_dict(to_dict())`` is the identity."""
        out: dict[str, Any] = {
            "profile": self.profile,
            "peak_rate_pps": self.peak_rate_pps,
            "trough_fraction": self.trough_fraction,
            "period_s": self.period_s,
            "noise_std": self.noise_std,
            "packet_bytes": self.packet_bytes,
            "flow_group_size": self.flow_group_size,
            "flash": {
                "probability": self.flash.probability,
                "multiplier": self.flash.multiplier,
                "duration_intervals": self.flash.duration_intervals,
            },
            "churn": {
                "arrivals_per_cycle": self.churn.arrivals_per_cycle,
                "departure_prob": self.churn.departure_prob,
                "max_chains": self.churn.max_chains,
            },
        }
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadConfig":
        """Build (and validate) from a plain dict."""
        data = dict(data)
        flash = FlashCrowdConfig(**dict(data.pop("flash", {})))
        churn = ChurnConfig(**dict(data.pop("churn", {})))
        return cls(flash=flash, churn=churn, **data)
