"""Vectorized path math over the fleet's inter-shard link graph.

A :class:`RoutingTable` compiles a :class:`~repro.fleet.topology.FleetTopology`
into dense all-pairs arrays: shortest-path latency, per-path bottleneck
bandwidth, hop counts, next-hop successors and the summed reciprocal
bandwidth along each path — everything the coordinator's migration cost
model and the placement searchers need, batched in numpy instead of
per-pair graph walks.

The compile is a vectorized Floyd–Warshall: each relaxation round ``k``
updates all ``S x S`` pairs at once under a single strict-improvement
mask (``alt < dist``), so a direct edge is never displaced by an
equal-latency multi-hop detour and the tables are deterministic in the
shard order of the topology.  :meth:`RoutingTable.k_alternatives` then
derives the ``k`` best one-via deviations per pair from the same arrays
with one ``(S, S, S)`` tensor and a partition — no per-pair Python.

Exactness note: :meth:`path_links` reconstructs a path as its actual
:class:`~repro.fleet.topology.InterShardLink` hops, so callers that need
bit-reproducible energy accounting (the coordinator's ``_score_move``)
sum per-hop floats in hop order; the dense matrices are for batched
scoring where a vectorized estimate is the point.
"""

from __future__ import annotations

import numpy as np

from repro.fleet.topology import FleetTopology, InterShardLink


class RoutingTable:
    """All-pairs routed paths for one topology, as dense numpy arrays.

    Attributes (all ``(S, S)`` for ``S`` shards, diagonal = self):

    * ``latency_s`` — shortest-path latency (sum of edge latencies);
    * ``bottleneck_gbps`` — thinnest edge along that path (``inf`` on
      the diagonal);
    * ``hops`` — edge count of the path (0 on the diagonal);
    * ``inv_gbps_sum`` — sum of ``1/gbps`` over the path's edges (the
      per-byte serialization weight of the whole path);
    * ``next_hop`` — successor matrix: ``next_hop[i, j]`` is the first
      shard index after ``i`` on the path to ``j``.
    """

    def __init__(self, topology: FleetTopology):
        self.topology = topology
        names = tuple(s.name for s in topology.shards)
        self.shard_names = names
        self._index = {name: i for i, name in enumerate(names)}
        n = len(names)
        lat = np.full((n, n), np.inf)
        gbw = np.zeros((n, n))
        for link in topology.edges():
            a, b = self._index[link.a], self._index[link.b]
            lat[a, b] = lat[b, a] = link.latency_s
            gbw[a, b] = gbw[b, a] = link.gbps
        self._compile_tables(lat, gbw)

    # -- compile -----------------------------------------------------------

    def _compile_tables(self, lat: np.ndarray, gbw: np.ndarray) -> None:
        """Vectorized Floyd–Warshall over the adjacency arrays.

        All five tables relax under one strict-improvement mask, so they
        stay mutually consistent (the bottleneck/hop/reciprocal entries
        always describe the same path the latency entry priced).
        """
        n = lat.shape[0]
        dist = lat.copy()
        np.fill_diagonal(dist, 0.0)
        idx = np.arange(n)
        nxt = np.where(np.isfinite(lat), idx[None, :], -1)
        nxt[idx, idx] = idx
        hops = np.where(np.isfinite(lat), 1, 0)
        np.fill_diagonal(hops, 0)
        bneck = np.where(gbw > 0.0, gbw, 0.0)
        np.fill_diagonal(bneck, np.inf)
        inv = np.where(gbw > 0.0, 1.0 / np.where(gbw > 0.0, gbw, 1.0), np.inf)
        np.fill_diagonal(inv, 0.0)
        for k in range(n):  # repro-lint: allow[KRN002] Floyd–Warshall relaxation rounds are inherently sequential in k; each round is a fully vectorized S x S update
            alt = dist[:, k, None] + dist[None, k, :]
            better = alt < dist
            dist = np.where(better, alt, dist)
            nxt = np.where(better, nxt[:, k, None], nxt)
            hops = np.where(better, hops[:, k, None] + hops[None, k, :], hops)
            bneck = np.where(
                better, np.minimum(bneck[:, k, None], bneck[None, k, :]), bneck
            )
            inv = np.where(better, inv[:, k, None] + inv[None, k, :], inv)
        off_diag = ~np.eye(n, dtype=bool)
        if n > 1 and not np.isfinite(dist[off_diag]).all():
            # Topology validation rejects disconnected graphs before a
            # table is ever built; this guards direct misuse.
            raise ValueError("topology graph is disconnected; cannot route")
        self.latency_s = dist
        self.next_hop = nxt
        self.hops = hops
        self.bottleneck_gbps = bneck
        self.inv_gbps_sum = inv

    # -- lookups -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shards (vertices) in the table."""
        return len(self.shard_names)

    def index(self, shard: str) -> int:
        """Dense index of a shard name."""
        try:
            return self._index[shard]
        except KeyError:
            raise KeyError(
                f"no shard {shard!r}; shards: {list(self.shard_names)}"
            ) from None

    def path(self, src: str, dst: str) -> tuple[str, ...]:
        """The routed shard sequence from ``src`` to ``dst``, inclusive."""
        i, j = self.index(src), self.index(dst)
        names = self.shard_names
        out = [names[i]]
        while i != j:
            i = int(self.next_hop[i, j])
            out.append(names[i])
        return tuple(out)

    def path_links(self, src: str, dst: str) -> tuple[InterShardLink, ...]:
        """The actual links along the routed path, in hop order.

        Every consecutive pair on a routed path is adjacent by
        construction, so ``link_between`` resolves each hop exactly —
        this is the bit-reproducible view the migration cost model sums.
        """
        hops = self.path(src, dst)
        return tuple(
            self.topology.link_between(a, b) for a, b in zip(hops, hops[1:])
        )

    def path_latency_s(self, src: str, dst: str) -> float:
        """Shortest-path latency between two shards."""
        return float(self.latency_s[self.index(src), self.index(dst)])

    def path_bottleneck_gbps(self, src: str, dst: str) -> float:
        """Bottleneck bandwidth of the shortest path between two shards."""
        return float(self.bottleneck_gbps[self.index(src), self.index(dst)])

    def transfer_seconds(self, src: str, dst: str, n_bytes: float) -> float:
        """Routed wire time for ``n_bytes``: per-hop serialization + path latency.

        Each hop serializes the payload at its own link rate, so the
        transfer integrates ``bytes * 8 / gbps`` over the path (the
        precompiled ``inv_gbps_sum``) before adding the path latency.
        """
        i, j = self.index(src), self.index(dst)
        return float(
            n_bytes * 8.0 / 1e9 * self.inv_gbps_sum[i, j]
            + self.latency_s[i, j]
        )

    # -- k-shortest alternatives -------------------------------------------

    def k_alternatives(self, k: int) -> np.ndarray:
        """Latencies of the ``k`` best one-via deviations, per pair.

        Returns an ``(S, S, k)`` array whose ``[i, j]`` slice holds, in
        ascending order, the shortest-path latency followed by the
        ``k - 1`` cheapest alternatives of the form "shortest path to a
        via shard ``m``, then shortest path onward" with ``m`` neither
        endpoint.  This is the standard one-deviation relaxation of
        k-shortest paths — enough to price how much slack a pair has if
        its primary path saturates — computed as one ``(S, S, S)``
        tensor plus a partition, with no per-pair Python.  Slots beyond
        the available distinct vias are ``inf``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        d = self.latency_s
        n = d.shape[0]
        via = d[:, None, :] + d.T[None, :, :]
        idx = np.arange(n)
        via[idx, :, idx] = np.inf
        via[:, idx, idx] = np.inf
        m = min(k - 1, n)
        if m > 0:
            alts = np.partition(via, m - 1, axis=2)[:, :, :m]
            alts.sort(axis=2)
        else:
            alts = np.empty((n, n, 0))
        out = np.full((n, n, k), np.inf)
        out[:, :, 0] = d
        out[:, :, 1 : 1 + m] = alts
        return out
