"""Fleet subsystem: sharded multi-cluster simulation at datacenter scale.

One :class:`~repro.nfv.cluster_kernel.ClusterKernel` prices a whole
cluster per interval; this package scales *out*: a fleet is a set of
**shards** (clusters) joined by inter-shard links, each shard stepped by
its own kernel — in-process (:class:`~repro.fleet.shard.LocalShard`) or
in a real worker process (:class:`~repro.fleet.shard.ShardWorker`) — and
a :class:`~repro.fleet.coordinator.FleetCoordinator` running the global
gather / decide / scatter loop: per-shard telemetry summaries in, SDN
knob steering and **cross-shard chain migration** decisions out.

Determinism is the design center: all stochastic inputs (traffic draws,
flash crowds, churn) come from counter-based RNG streams keyed on
``(seed, name, interval)``, so a seeded fleet run is bit-identical
regardless of the worker count and between the local and process
backends (``tests/test_fleet.py`` pins it).

Entry points::

    from repro.fleet import run_fleet
    result = run_fleet(spec)            # spec.fleet holds the fleet section

    python -m repro fleet fleet-small --backend process --out fleet.json
"""

from repro.fleet.arena import ArenaLayout, TelemetryArena
from repro.fleet.coordinator import FleetCoordinator, FleetResult, run_fleet
from repro.fleet.placement import (
    PLACEMENTS,
    GeneticPlacement,
    GreedyPlacement,
    PlacementModel,
    WatermarkPlacement,
)
from repro.fleet.routing import RoutingTable
from repro.fleet.shard import (
    ChainTicket,
    LocalShard,
    ShardConfig,
    ShardSim,
    ShardWorker,
    arena_layout_for,
)
from repro.fleet.spec import FLEETS, FleetSpec, MigrationConfig, SteeringConfig
from repro.fleet.topology import (
    TOPOLOGY_PRESETS,
    FleetTopology,
    InterShardLink,
    ShardSpec,
)
from repro.fleet.workload import (
    ChurnConfig,
    FlashCrowdConfig,
    WorkloadConfig,
    interval_stream,
)

__all__ = [
    "FLEETS",
    "PLACEMENTS",
    "TOPOLOGY_PRESETS",
    "ArenaLayout",
    "ChainTicket",
    "ChurnConfig",
    "FlashCrowdConfig",
    "FleetCoordinator",
    "FleetResult",
    "FleetSpec",
    "FleetTopology",
    "GeneticPlacement",
    "GreedyPlacement",
    "InterShardLink",
    "LocalShard",
    "MigrationConfig",
    "PlacementModel",
    "RoutingTable",
    "ShardConfig",
    "ShardSim",
    "ShardSpec",
    "ShardWorker",
    "SteeringConfig",
    "TelemetryArena",
    "WatermarkPlacement",
    "WorkloadConfig",
    "arena_layout_for",
    "interval_stream",
    "run_fleet",
]
