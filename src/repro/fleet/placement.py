"""Joint placement + path-allocation baselines for the fleet coordinator.

The coordinator's migration pass has two halves: a *policy* proposes a
fleet-wide desired placement, and the common vetting loop keeps only the
net-positive, budget/capacity/headroom-respecting moves (scored by the
exact :class:`~repro.fleet.spec.MigrationConfig` model over routed
paths).  :data:`PLACEMENTS` is the policy registry — ``repro fleet
--placement {watermark,greedy,genetic}`` — and every policy is a
deterministic function of the gathered telemetry, the authoritative
placement book and the cycle index, so seeded runs stay bit-identical
across backends regardless of the policy.

* ``watermark`` — the original coordinator: flow-affine consolidation
  via :func:`~repro.nfv.cluster.consolidation_plan`, blind to the link
  graph (the vetting pass pays routed costs after the fact).
* ``greedy`` — an LP-shaped greedy relaxation of the joint
  placement/routing ILP (minimize routed transfer energy plus active
  node energy, subject to capacity and SLA-headroom constraints):
  chains are (re)assigned one at a time, heaviest first, each to the
  node minimizing its marginal routed cost minus vacate/co-location
  savings.
* ``genetic`` — a small generational searcher over whole assignments
  (tournament-free: elite truncation, uniform crossover, point
  mutation) whose fitness is the same vectorized routed-energy model;
  all randomness comes from the counter-based
  :func:`~repro.fleet.workload.interval_stream` keyed on the cycle, so
  the search is reproducible anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.fleet.routing import RoutingTable
from repro.fleet.workload import interval_stream
from repro.nfv.cluster import consolidation_plan
from repro.scenario.registry import Registry

PLACEMENTS = Registry("placement policy")

#: Constraint-violation penalty: large enough that one overfull node or
#: blown SLA watermark dominates any achievable energy difference.
_INFEASIBLE_J = 1e12


@dataclass(frozen=True)
class PlacementModel:
    """One cycle's placement problem as dense arrays.

    ``C`` chains (the sorted summary names) over ``N`` global nodes.
    ``move_cost_j[c, n]`` is the routed migration cost estimate of
    shipping chain ``c`` to node ``n`` (0 at its current node):
    per-hop serialization over the shortest path's links plus path
    latency, priced at ``link_power_w`` — the same shape the
    coordinator's exact scorer charges, built from the routing table's
    precompiled matrices.  ``extern``/``extern_util`` account for
    placed chains outside the problem (no telemetry yet), so capacity
    and headroom stay honest.
    """

    names: tuple[str, ...]
    cur: np.ndarray
    flow: np.ndarray
    util: np.ndarray
    power_w: np.ndarray
    move_cost_j: np.ndarray
    counts: np.ndarray
    extern: np.ndarray
    extern_util: np.ndarray
    vacate_gain_j: np.ndarray
    capacity: int
    headroom: float
    colocation_gain_j: float

    @property
    def n_nodes(self) -> int:
        """Global node count ``N``."""
        return int(self.counts.shape[0])


def build_model(
    *,
    fleet: Any,
    routing: RoutingTable,
    global_nodes: list[tuple[str, int]],
    global_index: Mapping[tuple[str, int], int],
    interval_s: float,
    names: list[str],
    summaries: Mapping[str, Any],
    placement: Mapping[str, tuple[str, int]],
    counts: list[int],
    node_info: Mapping[tuple[str, int], Any],
) -> PlacementModel:
    """Assemble the dense problem arrays for one cycle."""
    mig = fleet.migration
    n_nodes = len(global_nodes)
    cur = np.array([global_index[placement[n]] for n in names], dtype=np.int64)
    flow_codes: dict[str, int] = {}
    flow = np.array(
        [
            flow_codes.setdefault(summaries[n].flow, len(flow_codes))
            for n in names
        ],
        dtype=np.int64,
    )
    util = np.array([summaries[n].utilization for n in names])
    power_w = np.array([summaries[n].power_w for n in names])
    payload = np.array(
        [summaries[n].state_bytes + summaries[n].dma_bytes for n in names]
    )
    node_shard = np.array(
        [routing.index(shard) for shard, _ in global_nodes], dtype=np.int64
    )
    chain_shard = node_shard[cur]
    inv = routing.inv_gbps_sum[chain_shard[:, None], node_shard[None, :]]
    lat = routing.latency_s[chain_shard[:, None], node_shard[None, :]]
    transfer_s = payload[:, None] * 8.0 / 1e9 * inv + lat
    cross = node_shard[None, :] != chain_shard[:, None]
    move_cost = mig.setup_j + np.where(cross, transfer_s * mig.link_power_w, 0.0)
    move_cost[np.arange(len(names)), cur] = 0.0
    counts_arr = np.asarray(counts, dtype=np.int64)
    own = np.bincount(cur, minlength=n_nodes)
    own_util = np.bincount(cur, weights=util, minlength=n_nodes)
    node_power = np.zeros(n_nodes)
    node_util = np.zeros(n_nodes)
    for key, info in node_info.items():
        g = global_index[key]
        node_power[g] = info.power_w
        node_util[g] = info.utilization
    horizon_s = mig.amortize_intervals * interval_s
    return PlacementModel(
        names=tuple(names),
        cur=cur,
        flow=flow,
        util=util,
        power_w=power_w,
        move_cost_j=move_cost,
        counts=counts_arr,
        extern=np.clip(counts_arr - own, 0, None),
        extern_util=np.clip(node_util - own_util, 0.0, None),
        vacate_gain_j=np.clip(node_power - mig.parked_power_w, 0.0, None)
        * horizon_s,
        capacity=int(mig.capacity_per_node),
        headroom=float(mig.headroom),
        colocation_gain_j=float(mig.colocation_gain_j),
    )


def greedy_assign(model: PlacementModel) -> np.ndarray:
    """One heaviest-first greedy pass over the LP relaxation.

    Each chain moves to the node minimizing its marginal cost — routed
    transfer energy minus the vacate saving of emptying its source and
    the co-location bonus of joining a flow-mate — subject to capacity
    and headroom; ties (and no-improvement) keep the current node, so
    an already-consolidated fleet is a fixed point.
    """
    assign = model.cur.copy()
    counts = model.counts.copy()
    util_n = model.extern_util + np.bincount(
        assign, weights=model.util, minlength=model.n_nodes
    )
    order = sorted(
        range(len(model.names)), key=lambda c: (-model.power_w[c], c)
    )
    for c in order:
        cur = int(assign[c])
        mates = model.flow == model.flow[c]
        mates[c] = False
        mate_nodes = np.zeros(model.n_nodes, dtype=bool)
        mate_nodes[assign[mates]] = True
        delta = model.move_cost_j[c].copy()
        if counts[cur] == 1:
            # Leaving would park the source node; staying forgoes it.
            delta = delta - model.vacate_gain_j[cur]
            delta[cur] += model.vacate_gain_j[cur]
        delta = delta - model.colocation_gain_j * mate_nodes
        feasible = (counts < model.capacity) & (
            util_n + model.util[c] <= model.headroom
        )
        feasible[cur] = True
        delta[~feasible] = np.inf
        best = int(np.argmin(delta))
        if best != cur and delta[best] < delta[cur]:
            assign[c] = best
            counts[cur] -= 1
            counts[best] += 1
            util_n[cur] -= model.util[c]
            util_n[best] += model.util[c]
    return assign


class PlacementPolicy:
    """Shared construction for the registered policies."""

    def __init__(
        self,
        *,
        fleet: Any,
        routing: RoutingTable,
        global_nodes: list[tuple[str, int]],
        global_index: Mapping[tuple[str, int], int],
        interval_s: float,
        seed: int,
    ):
        self.fleet = fleet
        self.routing = routing
        self.global_nodes = list(global_nodes)
        self.global_index = dict(global_index)
        self.interval_s = float(interval_s)
        self.seed = int(seed)

    def desired(
        self,
        *,
        cycle: int,
        names: list[str],
        summaries: Mapping[str, Any],
        placement: Mapping[str, tuple[str, int]],
        counts: list[int],
        node_info: Mapping[tuple[str, int], Any],
    ) -> dict[str, int] | None:
        """The fleet-wide desired placement, or ``None`` to skip."""
        raise NotImplementedError

    def _model(self, names, summaries, placement, counts, node_info):
        return build_model(
            fleet=self.fleet,
            routing=self.routing,
            global_nodes=self.global_nodes,
            global_index=self.global_index,
            interval_s=self.interval_s,
            names=names,
            summaries=summaries,
            placement=placement,
            counts=counts,
            node_info=node_info,
        )


@PLACEMENTS.register("watermark")
class WatermarkPlacement(PlacementPolicy):
    """The original coordinator policy: flow-affine consolidation."""

    def desired(
        self, *, cycle, names, summaries, placement, counts, node_info
    ) -> dict[str, int] | None:
        mig = self.fleet.migration
        chains = [summaries[n] for n in names]
        flow_paths = {n: [summaries[n].flow] for n in names}
        try:
            return consolidation_plan(
                chains,
                flow_paths,
                len(self.global_nodes),
                capacity=mig.capacity_per_node,
            )
        except ValueError:
            # More chains than the capacity model admits (transient
            # churn overshoot): skip consolidation this cycle.
            return None


@PLACEMENTS.register("greedy")
class GreedyPlacement(PlacementPolicy):
    """LP-shaped greedy over the routed-energy model (topology-aware)."""

    def desired(
        self, *, cycle, names, summaries, placement, counts, node_info
    ) -> dict[str, int] | None:
        model = self._model(names, summaries, placement, counts, node_info)
        assign = greedy_assign(model)
        return {name: int(assign[c]) for c, name in enumerate(model.names)}


@PLACEMENTS.register("genetic")
class GeneticPlacement(PlacementPolicy):
    """Generational search over whole assignments (SNIPPETS.md §3 shape)."""

    population = 24
    generations = 10
    elite = 6
    seed_mutation = 0.25
    mutation = 0.08

    def desired(
        self, *, cycle, names, summaries, placement, counts, node_info
    ) -> dict[str, int] | None:
        model = self._model(names, summaries, placement, counts, node_info)
        n_chains, n_nodes = len(model.names), model.n_nodes
        rng = interval_stream(self.seed, "fleet/placement/genetic", cycle)
        pop = np.tile(model.cur, (self.population, 1))
        pop[1] = greedy_assign(model)
        scatter = rng.random((self.population - 2, n_chains)) < self.seed_mutation
        pop[2:][scatter] = rng.integers(0, n_nodes, size=int(scatter.sum()))
        n_children = self.population - self.elite
        for _ in range(self.generations):
            order = np.argsort(self._fitness(model, pop), kind="stable")
            elite = pop[order[: self.elite]]
            pa = rng.integers(0, self.elite, size=n_children)
            pb = rng.integers(0, self.elite, size=n_children)
            take_a = rng.random((n_children, n_chains)) < 0.5
            children = np.where(take_a, elite[pa], elite[pb])
            mutate = rng.random((n_children, n_chains)) < self.mutation
            children[mutate] = rng.integers(0, n_nodes, size=int(mutate.sum()))
            pop = np.concatenate([elite, children])
        best = pop[int(np.argmin(self._fitness(model, pop)))]
        return {name: int(best[c]) for c, name in enumerate(model.names)}

    def _fitness(self, model: PlacementModel, pop: np.ndarray) -> np.ndarray:
        """Vectorized routed-energy estimate of a ``(P, C)`` population.

        Lower is better: routed move costs, minus vacated-node and
        co-location savings, plus hard penalties for capacity overflow
        and SLA-headroom strain — the whole population at once, no
        per-individual Python.
        """
        cols = np.arange(pop.shape[1])
        moved = pop != model.cur[None, :]
        cost = (model.move_cost_j[cols[None, :], pop] * moved).sum(axis=1)
        occupancy = pop[:, :, None] == np.arange(model.n_nodes)[None, None, :]
        node_counts = occupancy.sum(axis=1) + model.extern[None, :]
        overflow = np.clip(node_counts - model.capacity, 0, None).sum(axis=1)
        util_n = (occupancy * model.util[None, :, None]).sum(axis=1)
        util_n = util_n + model.extern_util[None, :]
        strain = np.clip(util_n - model.headroom, 0.0, None).sum(axis=1)
        saved = ((node_counts == 0) * model.vacate_gain_j[None, :]).sum(axis=1)
        same_flow = (model.flow[:, None] == model.flow[None, :]) & ~np.eye(
            pop.shape[1], dtype=bool
        )
        mated = (
            same_flow[None, :, :] & (pop[:, :, None] == pop[:, None, :])
        ).any(axis=2)
        bonus = model.colocation_gain_j * mated.sum(axis=1)
        return cost - saved - bonus + _INFEASIBLE_J * (overflow + strain)
