"""Ablation: Ape-X actor-count scaling.

Expectation: at equal coordinator cycles, more actors gather more
experience, so the 4-actor variant converges at least as fast (mean
periodic-test reward) as the single-actor variant.
"""

from repro.experiments.ablations import ablation_apex_actors


def test_ablation_apex_actors(benchmark, once, capsys):
    rows, report = once(
        benchmark, ablation_apex_actors, actor_counts=(1, 2, 4), cycles=24, test_every=8
    )
    with capsys.disabled():
        print()
        print(report.render())
    by_variant = {r.variant: r for r in rows}
    assert by_variant["4 actor(s)"].final_reward > 0.5
    assert (
        by_variant["4 actor(s)"].auc_reward
        > 0.8 * by_variant["1 actor(s)"].auc_reward
    )
