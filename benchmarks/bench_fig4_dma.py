"""Figure 4: DMA-buffer micro-benchmark (throughput + Energy/MP, 2 sizes).

Paper shape: throughput rises steadily with buffer size and plateaus;
Energy/MP falls with throughput and turns back up once the ring overflows
the DDIO-reachable capacity; 64 B frames reach lower Gbps than 1518 B.
"""

import numpy as np

from repro.experiments import fig4_dma_sweep


def test_fig4_dma_sweep(benchmark, once, capsys):
    rows, report = once(benchmark, fig4_dma_sweep)
    with capsys.disabled():
        print()
        print(report.render())
    for pkt in (64.0, 1518.0):
        series = sorted(
            (r for r in rows if r.packet_bytes == pkt), key=lambda r: r.dma_mb
        )
        ts = [r.throughput_gbps for r in series]
        es = [r.energy_per_mp for r in series]
        assert all(b >= a - 1e-9 for a, b in zip(ts, ts[1:]))
        emin = int(np.argmin(es))
        assert es[-1] > es[emin]
