"""Figure 9: model comparison (throughput and energy bars).

Paper shape (who wins, by what factor):

* Baseline lowest throughput at the highest energy;
* Heuristics / EE-Pstate / Q-Learning in the middle (~1.5-2.5x baseline);
* the three GreenNFV SLAs on top — MaxT ~4.4x baseline throughput at
  substantially less energy, MinE the lowest energy while >= 3x baseline
  throughput, EE the best throughput-per-energy.
"""

from repro.experiments import fig9_comparison


def test_fig9_comparison(benchmark, once, capsys):
    result, report = once(
        benchmark,
        fig9_comparison,
        intervals=40,
        train_episodes=80,
        qlearning_episodes=150,
        seed=11,
    )
    with capsys.disabled():
        print()
        print(report.render())
    base = result.baseline
    heur = result.entry("Heuristics")
    eep = result.entry("EE-Pstate")
    ql = result.entry("Q-Learning")
    maxt = result.entry("GreenNFV(MaxT)")
    mine = result.entry("GreenNFV(MinE)")
    ee = result.entry("GreenNFV(EE)")

    # Mid-tier controllers: between baseline and GreenNFV.
    for entry in (heur, eep, ql):
        assert entry.throughput_gbps > 1.2 * base.throughput_gbps
        assert entry.energy_j < base.energy_j

    # GreenNFV(MaxT): the 4.4x headline (we accept 3.5-5.5x).
    t_ratio, e_ratio = maxt.relative_to(base)
    assert 3.5 < t_ratio < 5.5
    assert e_ratio < 0.75  # paper: 33% less energy (ours saves more)

    # GreenNFV(MinE): >= 3x baseline at roughly half the energy.
    t_ratio, e_ratio = mine.relative_to(base)
    assert t_ratio > 3.0
    assert e_ratio < 0.65

    # GreenNFV over the mid-tier: ~2x throughput (MaxT vs best mid-tier).
    best_mid = max(heur.throughput_gbps, eep.throughput_gbps, ql.throughput_gbps)
    assert maxt.throughput_gbps > 1.4 * best_mid

    # EE: the best energy efficiency of all entries.
    assert ee.energy_efficiency == max(e.energy_efficiency for e in result.entries)
