"""Ablation: prioritized vs. uniform experience replay.

Expectation (the Ape-X/PER claim): prioritization should not *hurt* —
its convergence-speed summary (mean periodic-test reward) lands at or
above uniform replay's on this workload.
"""

from repro.experiments.ablations import ablation_per


def test_ablation_per(benchmark, once, capsys):
    rows, report = once(benchmark, ablation_per, episodes=50, test_every=10)
    with capsys.disabled():
        print()
        print(report.render())
    per = next(r for r in rows if r.variant == "prioritized")
    uni = next(r for r in rows if r.variant == "uniform")
    # Both must learn; PER must be competitive on convergence speed.
    assert per.final_reward > 0.5
    assert uni.final_reward > 0.5
    assert per.auc_reward > 0.8 * uni.auc_reward
