"""Figure 10: trained policies deployed under fixed SLA constraints.

Paper shape: the MaxTh policy settles at a high throughput without
violating its fixed energy cap; the MinE policy holds the 7.5 Gbps floor
while keeping window energy low.  Early intervals may oscillate; the
back half of the run must be stable and compliant.
"""

import numpy as np

from repro.experiments import fig10_fixed_sla


def test_fig10_fixed_sla(benchmark, once, capsys):
    series, report = once(
        benchmark, fig10_fixed_sla, duration_s=120.0, train_episodes=60, seed=13
    )
    with capsys.disabled():
        print()
        print(report.render())
    maxt, mine = series
    # Steady-state (second half) behaviour.
    half = len(maxt.t_s) // 2
    assert float(np.mean(maxt.throughput_gbps[half:])) > 6.0
    assert maxt.satisfied_frac > 0.8
    assert float(np.mean(mine.throughput_gbps[half:])) > 7.0
    assert mine.satisfied_frac > 0.8
    # MinE's windowed energy stays below the MaxTh cap region.
    assert float(np.mean(mine.window_energy_j[half:])) < 1100.0
