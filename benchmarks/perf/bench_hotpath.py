#!/usr/bin/env python
"""Hot-path performance suite: engine step, batch grid, replay, training.

Times the six inner loops every experiment funnels through and writes
``BENCH_hotpath.json`` so the performance trajectory is tracked across
PRs:

* ``engine_step`` — one scalar control-interval evaluation;
* ``engine_batch_grid`` — a K-knob x L-load grid through ``step_batch``
  vs. the same grid through scalar ``step`` calls (the vectorization
  payoff for figure scans / knob searches; criterion: >= 5x);
* ``multi_chain_grid`` — a node hosting many chains stepped through the
  one-pass ``Node.step_all`` kernel vs. the seed per-chain scalar
  ``Node.step`` loop (the multi-chain env / SDN scaling payoff;
  criterion: >= 5x);
* ``cluster_grid`` — an 8-node x 4-chain SDN/cluster interval through
  the fused ``ClusterKernel`` pass vs. the per-node ``step_all`` loop
  (the multi-node scaling payoff; criterion: >= 3x);
* ``fleet_scale`` — a 4-shard x 8-node x 4-chain fleet stepped by
  process-backed ``ShardWorker``s vs. the single-process ``LocalShard``
  loop (the sharded scale-out payoff; both backends are bit-identical,
  so the ratio is pure parallelism; criterion: >= 2x at 4 shards);
* ``fleet_throughput`` — the same fleet through the pipelined
  shared-memory transport (``pipeline_depth=1`` + telemetry arenas) vs.
  the seed lockstep transport that pickles every ``ShardReport``
  through the pipe (kept in ``reference.py``; criterion: >= 1.5x);
* ``fleet_routing`` — all-pairs routed paths + k-shortest alternatives
  over a WAN ring topology through the vectorized ``RoutingTable``
  (Floyd–Warshall in numpy) vs. the per-pair scalar Dijkstra/k-via
  reference (kept in ``reference.py``; criterion: >= 5x);
* ``replay_add_sample`` — prioritized add/sample/update against the
  seed's list + per-leaf-walk implementation (kept in ``reference.py``);
* ``training_slice`` — a short end-to-end DDPG run vs. the same run with
  seed-style replay and per-episode platform rebuilds (criterion: >= 2x);
* ``obs_overhead`` — the tracing-off cost of the ``repro.obs``
  instrumentation, expressed as a percentage of one fleet cycle: per-call
  disabled-path cost (null span + guarded counter) times the calls one
  instrumented cycle actually makes (criterion: < 2% overhead).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_hotpath.py --quick \
        [--out BENCH_hotpath.json] \
        [--check-against benchmarks/perf/BENCH_hotpath.json] \
        [--history benchmarks/perf/BENCH_history.json --pr PR4]

``--check-against`` compares wall-clock against a committed baseline and
exits non-zero on a >2x slowdown (tunable with ``--max-slowdown``) or on
a missed speedup criterion.  ``--history`` appends this run as a
``{pr, benches}`` record to a trajectory file (one record per PR,
replacing an existing record with the same label), so cross-PR
regressions stay visible instead of being overwritten by the latest
snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:  # imported as benchmarks.perf.bench_hotpath
    from benchmarks.perf import reference
except ImportError:  # script / file-path invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import reference

import repro.core.training as training_mod
import repro.hw.cpu as cpu_mod
import repro.nfv.knobs as knobs_mod
import repro.nfv.node as node_mod
import repro.rl.ddpg as ddpg_mod
from repro.core.env import NFVEnv
from repro.core.sla import EnergyEfficiencySLA
from repro.core.training import train_ddpg
from repro.nfv.chain import default_chain
from repro.nfv.engine import PacketEngine
from repro.nfv.knobs import KnobSettings
from repro.rl.per import PrioritizedReplayBuffer
from repro.rl.replay import Transition
from repro.utils.units import line_rate_pps

FORMAT_VERSION = 1

#: Minimum acceptable in-run speedups (vectorized vs. reference loop).
CRITERIA = {
    "engine_batch_grid": 5.0,
    "multi_chain_grid": 5.0,
    "cluster_grid": 3.0,
    "fleet_scale": 2.0,
    "fleet_throughput": 1.5,
    "fleet_routing": 5.0,
    "training_slice": 2.0,
}


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate(rounds: int = 3) -> float:
    """Time a fixed numpy/Python workload to normalize across machines.

    Absolute bench seconds divided by this number are roughly
    machine-independent, so the committed baseline can gate slowdowns
    without flagging a slower (or merely busier) runner.
    """
    rng = np.random.default_rng(0)
    a = rng.random(4096)
    b = rng.random((64, 64))

    def work():
        acc = 0.0
        for _ in range(400):
            acc += float(np.sum(a * a))
            np.sqrt(a)
            b @ b
            [x * 2 for x in range(50)]
        return acc

    return _best_of(work, rounds)


def bench_engine_step(quick: bool, rounds: int) -> dict:
    """Scalar ``PacketEngine.step`` latency."""
    n = 500 if quick else 2000
    engine = PacketEngine()
    chain = default_chain()
    knobs = KnobSettings(
        cpu_share=1.5, cpu_freq_ghz=2.0, llc_fraction=0.9, dma_mb=16, batch_size=160
    )
    offered = line_rate_pps(10.0, 1518)

    def run():
        for _ in range(n):
            engine.step(chain, knobs, offered, 1518.0, 1.0)

    seconds = _best_of(run, rounds)
    return {"seconds": seconds, "calls": n, "per_call_us": seconds / n * 1e6}


def bench_engine_batch_grid(quick: bool, rounds: int) -> dict:
    """K x L knob/load grid: ``step_batch`` vs. a loop of ``step`` calls."""
    K, L = (24, 8) if quick else (48, 24)
    engine = PacketEngine()
    chain = default_chain()
    rng = np.random.default_rng(0)
    grid = [
        KnobSettings(
            cpu_share=float(rng.uniform(0.5, 1.5)),
            cpu_freq_ghz=float(rng.uniform(1.2, 2.1)),
            llc_fraction=float(rng.uniform(0.1, 1.0)),
            dma_mb=float(rng.uniform(1.0, 40.0)),
            batch_size=int(rng.integers(1, 257)),
        )
        for _ in range(K)
    ]
    loads = np.linspace(1e5, line_rate_pps(10.0, 1518), L)

    def vectorized():
        engine.step_batch(chain, grid, loads, 1518.0, 1.0)

    def loop():
        for k in grid:
            for ld in loads:
                engine.step(chain, k, float(ld), 1518.0, 1.0)

    vec_s = _best_of(vectorized, rounds)
    loop_s = _best_of(loop, max(1, rounds - 1))
    return {
        "seconds": vec_s,
        "grid": [K, L],
        "loop_seconds": loop_s,
        "speedup": loop_s / vec_s,
        "points_per_second": K * L / vec_s,
    }


def _multi_chain_node(n_chains: int) -> tuple:
    """A node hosting ``n_chains`` heterogeneous chains + its offered map."""
    from repro.nfv.chain import default_chain, heavy_chain, light_chain
    from repro.nfv.node import Node

    rng = np.random.default_rng(7)
    node = Node()
    offered = {}
    kinds = (default_chain, light_chain, heavy_chain)
    pkts = (64.0, 512.0, 1518.0)
    for i in range(n_chains):
        chain = kinds[i % len(kinds)](f"c{i}")
        node.deploy(
            chain,
            KnobSettings(
                cpu_share=float(rng.uniform(0.3, 1.5)),
                cpu_freq_ghz=float(rng.uniform(1.2, 2.1)),
                llc_fraction=float(rng.uniform(0.05, 1.0 / n_chains)),
                dma_mb=float(rng.uniform(1.0, 40.0)),
                batch_size=int(rng.integers(1, 257)),
            ),
        )
        offered[chain.name] = (float(rng.uniform(1e5, 2e6)), pkts[i % len(pkts)])
    return node, offered


def bench_multi_chain_grid(quick: bool, rounds: int) -> dict:
    """C hosted chains per interval: ``Node.step_all`` vs. the scalar loop."""
    n_chains = 12 if quick else 16
    n_steps = 40 if quick else 80
    kernel_node, offered = _multi_chain_node(n_chains)
    loop_node, _ = _multi_chain_node(n_chains)

    def kernel():
        for _ in range(n_steps):
            kernel_node.step_all(offered)

    def loop():
        for _ in range(n_steps):
            reference.reference_node_step(loop_node, offered)

    kernel_s = _best_of(kernel, rounds)
    loop_s = _best_of(loop, max(1, rounds - 1))
    return {
        "seconds": kernel_s,
        "chains": n_chains,
        "steps": n_steps,
        "reference_seconds": loop_s,
        "speedup": loop_s / kernel_s,
        "chain_steps_per_second": n_chains * n_steps / kernel_s,
    }


def _cluster(n_nodes: int, n_chains: int) -> tuple:
    """``n_nodes`` nodes x ``n_chains`` chains + the flat offered map."""
    from repro.nfv.chain import default_chain, heavy_chain, light_chain
    from repro.nfv.node import Node

    rng = np.random.default_rng(11)
    kinds = (default_chain, light_chain, heavy_chain)
    pkts = (64.0, 512.0, 1518.0)
    nodes, offered = [], {}
    for j in range(n_nodes):
        node = Node()
        for i in range(n_chains):
            chain = kinds[i % len(kinds)](f"n{j}c{i}")
            node.deploy(
                chain,
                KnobSettings(
                    cpu_share=float(rng.uniform(0.3, 1.5)),
                    cpu_freq_ghz=float(rng.uniform(1.2, 2.1)),
                    llc_fraction=float(rng.uniform(0.05, 1.0 / n_chains)),
                    dma_mb=float(rng.uniform(1.0, 40.0)),
                    batch_size=int(rng.integers(1, 257)),
                ),
            )
            offered[chain.name] = (
                float(rng.uniform(1e5, 2e6)),
                pkts[i % len(pkts)],
            )
        nodes.append(node)
    return nodes, offered


def bench_cluster_grid(quick: bool, rounds: int) -> dict:
    """An SDN/cluster interval: fused ClusterKernel vs. the per-node loop."""
    from repro.nfv.cluster_kernel import ClusterKernel

    n_nodes, n_chains = 8, 4
    n_steps = 30 if quick else 60
    kernel_nodes, offered = _cluster(n_nodes, n_chains)
    loop_nodes, _ = _cluster(n_nodes, n_chains)
    kernel = ClusterKernel(kernel_nodes)
    per_node_offered = [
        {name: offered[name] for name in node.chains} for node in loop_nodes
    ]
    # Warm both sides so the kernel (and per-node plans) are compiled.
    for _ in range(2):
        kernel.step(offered)
        reference.reference_cluster_step(loop_nodes, per_node_offered)

    def fused():
        for _ in range(n_steps):
            kernel.step(offered)

    def loop():
        for _ in range(n_steps):
            reference.reference_cluster_step(loop_nodes, per_node_offered)

    # Interleave the two sides so background-load drift hits both
    # equally; best-of per side is then a fair ratio (the fused side's
    # window is short, so a one-sided stall would skew a sequential
    # measurement).
    fused_s = loop_s = float("inf")
    for _ in range(max(3, rounds)):
        t0 = time.perf_counter()
        fused()
        fused_s = min(fused_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        loop()
        loop_s = min(loop_s, time.perf_counter() - t0)
    return {
        "seconds": fused_s,
        "nodes": n_nodes,
        "chains_per_node": n_chains,
        "steps": n_steps,
        "reference_seconds": loop_s,
        "speedup": loop_s / fused_s,
        "chain_steps_per_second": n_nodes * n_chains * n_steps / fused_s,
    }


def bench_fleet_scale(quick: bool, rounds: int) -> dict:
    """A 4-shard x 8-node x 4-chain fleet: process-backed shard workers
    vs. the single-process reference loop (criterion: >= 2x at 4 shards).

    Both coordinators run the identical deterministic simulation (the
    process backend is bit-identical to local), so the ratio isolates
    the scatter/gather parallelism.  Workers are started once and kept
    warm; rounds are interleaved so background-load drift hits both
    sides equally.
    """
    from repro.fleet import FLEETS, FleetCoordinator, FleetSpec

    fleet = FleetSpec.from_mapping(FLEETS.get("datacenter")())
    cycles = 1 if quick else 2
    seed = 5
    local = FleetCoordinator(fleet, seed=seed, backend="local")
    proc = FleetCoordinator(fleet, seed=seed, backend="process")
    try:
        # Warm both fleets: kernels compile, workers come up.
        local.run_cycles(1)
        proc.run_cycles(1)
        local_s = proc_s = float("inf")
        for _ in range(max(3, rounds)):
            t0 = time.perf_counter()
            local.run_cycles(cycles)
            local_s = min(local_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            proc.run_cycles(cycles)
            proc_s = min(proc_s, time.perf_counter() - t0)
    finally:
        local.close()
        proc.close()
    n_chains = fleet.topology.total_chains
    intervals = cycles * fleet.sync_every
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    result = {
        "seconds": proc_s,
        "shards": fleet.topology.n_shards,
        "nodes": fleet.topology.total_nodes,
        "chains": n_chains,
        "intervals": intervals,
        "cpus": cpus,
        "reference_seconds": local_s,
        "speedup": local_s / proc_s,
        "chain_steps_per_second": n_chains * intervals / proc_s,
    }
    if cpus < 2:
        # Worker processes cannot overlap on one CPU; the wall-clock
        # ratio then measures nothing but IPC overhead.  Record the run
        # (the overhead trend is still useful) but waive the speedup
        # criterion — CI's multi-core runners enforce it.
        result["criterion_waived"] = (
            f"process parallelism needs >= 2 CPUs (have {cpus})"
        )
    return result


def bench_fleet_throughput(quick: bool, rounds: int) -> dict:
    """The datacenter fleet: pipelined shared-memory transport vs. the
    seed lockstep pickled transport (criterion: >= 1.5x).

    Both sides run the process backend, so the ratio isolates what this
    PR changed: double-buffered decide/step overlap plus zero-copy
    telemetry arenas, against lockstep cycles whose every ``run`` reply
    pickles a full ``ShardReport`` through the pipe.  Workers are
    started once and kept warm; rounds are interleaved.
    """
    import repro.fleet.coordinator as coordinator_mod
    from repro.fleet import FLEETS, FleetCoordinator, FleetSpec

    fleet = FleetSpec.from_mapping(FLEETS.get("datacenter")())
    cycles = 1 if quick else 2
    seed = 5
    pipe = FleetCoordinator(
        fleet.with_updates(pipeline_depth=1), seed=seed, backend="process"
    )
    saved = coordinator_mod.ShardWorker
    coordinator_mod.ShardWorker = reference.ReferenceShardWorker
    try:
        lock = FleetCoordinator(
            fleet.with_updates(pipeline_depth=0), seed=seed, backend="process"
        )
    finally:
        coordinator_mod.ShardWorker = saved
    try:
        # Warm both fleets: kernels compile, workers come up.
        pipe.run_cycles(1)
        lock.run_cycles(1)
        pipe_s = lock_s = float("inf")
        for _ in range(max(3, rounds)):
            t0 = time.perf_counter()
            pipe.run_cycles(cycles)
            pipe_s = min(pipe_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            lock.run_cycles(cycles)
            lock_s = min(lock_s, time.perf_counter() - t0)
    finally:
        pipe.close()
        lock.close()
    n_chains = fleet.topology.total_chains
    intervals = cycles * fleet.sync_every
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    result = {
        "seconds": pipe_s,
        "shards": fleet.topology.n_shards,
        "nodes": fleet.topology.total_nodes,
        "chains": n_chains,
        "intervals": intervals,
        "cpus": cpus,
        "reference_seconds": lock_s,
        "speedup": lock_s / pipe_s,
        "chain_intervals_per_second": n_chains * intervals / pipe_s,
    }
    if cpus < 2:
        # With one CPU the decide phase cannot overlap the shard steps,
        # so pipelining buys nothing and only the (small) transport win
        # remains.  Record the run but waive the criterion — CI's
        # multi-core runners enforce it.
        result["criterion_waived"] = (
            f"pipelining overlap needs >= 2 CPUs (have {cpus})"
        )
    return result


def bench_fleet_routing(quick: bool, rounds: int) -> dict:
    """All-pairs routed paths over a WAN ring: vectorized ``RoutingTable``
    vs. the per-pair scalar Dijkstra/k-via reference (criterion: >= 5x).

    Both sides compile the full shortest-path latency table and the
    k-best one-via alternatives for every shard pair from the same
    topology; a one-time cross-check pins that they agree before the
    ratio is taken.  Pure array math vs. pure Python — no processes —
    so the criterion holds on single-CPU runners too.
    """
    from repro.fleet import FleetTopology
    from repro.fleet.routing import RoutingTable

    n_sites = 64 if quick else 96
    k = 4
    topo = FleetTopology.wan(n_sites, nodes=1, chains_per_node=0)

    def vectorized():
        table = RoutingTable(topo)
        return table, table.k_alternatives(k)

    def loop():
        return reference.reference_route_tables(topo, k)

    # Cross-check once: the dense tables must match the scalar walk.
    table, alts = vectorized()
    ref_dist, ref_alts = loop()
    names = table.shard_names
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if abs(table.latency_s[i, j] - ref_dist[a][b]) > 1e-12:
                raise AssertionError(f"latency mismatch for {a}->{b}")
            got = alts[i, j, : len(ref_alts[a][b])]
            if np.abs(got - np.asarray(ref_alts[a][b])).max() > 1e-12:
                raise AssertionError(f"k-alternative mismatch for {a}->{b}")

    vec_s = _best_of(lambda: vectorized(), rounds)
    loop_s = _best_of(lambda: loop(), max(1, rounds - 1))
    pairs = n_sites * n_sites
    return {
        "seconds": vec_s,
        "shards": n_sites,
        "k": k,
        "reference_seconds": loop_s,
        "speedup": loop_s / vec_s,
        "pairs_per_second": pairs / vec_s,
    }


def _replay_workload(buf, n_add: int, n_rounds: int, rng: np.random.Generator):
    chunk = 64
    for start in range(0, n_add, chunk):
        ts = [
            Transition(rng.random(8), rng.random(5), float(i), rng.random(8), False)
            for i in range(start, min(start + chunk, n_add))
        ]
        buf.extend(ts, [float(i % 7 + 1) for i in range(len(ts))])
    for _ in range(n_rounds):
        batch = buf.sample(64)
        buf.update_priorities(batch.indices, rng.random(64))


def bench_replay(quick: bool, rounds: int) -> dict:
    """PER add/sample/update: struct-of-arrays vs. the seed list storage."""
    n_add, n_rounds = (1000, 100) if quick else (4000, 400)

    def new_impl():
        _replay_workload(
            PrioritizedReplayBuffer(50_000, rng=0), n_add, n_rounds,
            np.random.default_rng(1),
        )

    def ref_impl():
        _replay_workload(
            reference.ReferencePrioritizedReplayBuffer(50_000, rng=0), n_add, n_rounds,
            np.random.default_rng(1),
        )

    new_s = _best_of(new_impl, rounds)
    ref_s = _best_of(ref_impl, max(1, rounds - 1))
    return {"seconds": new_s, "reference_seconds": ref_s, "speedup": ref_s / new_s}


def bench_training_slice(quick: bool, rounds: int) -> dict:
    """Short end-to-end DDPG run vs. seed-style replay + platform rebuilds."""
    episodes = 12 if quick else 16
    kwargs = dict(
        episodes=episodes, test_every=episodes // 2, warmup_transitions=64, rng=3
    )

    def run_current():
        sla = EnergyEfficiencySLA()
        train_ddpg(
            NFVEnv(sla, episode_len=16, rng=1),
            NFVEnv(sla, episode_len=16, rng=2),
            **kwargs,
        )

    def run_reference():
        sla = EnergyEfficiencySLA()
        saved = (
            training_mod.PrioritizedReplayBuffer,
            ddpg_mod.Adam,
            ddpg_mod.MLP,
            knobs_mod.KnobSettings.clamped,
            cpu_mod.CpuSpec.clamp_frequency,
            node_mod.Node._repartition_llc,
        )
        training_mod.PrioritizedReplayBuffer = (
            reference.ReferencePrioritizedReplayBuffer
        )
        ddpg_mod.Adam = reference.ReferenceAdam
        ddpg_mod.MLP = reference.ReferenceMLP
        knobs_mod.KnobSettings.clamped = reference.reference_clamped
        cpu_mod.CpuSpec.clamp_frequency = reference.reference_clamp_frequency
        node_mod.Node._repartition_llc = reference.reference_repartition_llc
        try:
            train_ddpg(
                reference.RebuildingEnv(sla, episode_len=16, rng=1),
                reference.RebuildingEnv(sla, episode_len=16, rng=2),
                **kwargs,
            )
        finally:
            (
                training_mod.PrioritizedReplayBuffer,
                ddpg_mod.Adam,
                ddpg_mod.MLP,
            ) = saved[:3]
            knobs_mod.KnobSettings.clamped = saved[3]
            cpu_mod.CpuSpec.clamp_frequency = saved[4]
            node_mod.Node._repartition_llc = saved[5]

    # Interleave the two variants so background-load drift hits both
    # sides equally; best-of per side is then a fair ratio.
    new_s = ref_s = float("inf")
    for _ in range(max(2, rounds)):
        t0 = time.perf_counter()
        run_current()
        new_s = min(new_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_reference()
        ref_s = min(ref_s, time.perf_counter() - t0)
    return {
        "seconds": new_s,
        "episodes": episodes,
        "reference_seconds": ref_s,
        "speedup": ref_s / new_s,
    }


def bench_obs_overhead(quick: bool, rounds: int) -> dict:
    """Tracing-off cost of the observability hooks (criterion: < 2%).

    The ``repro.obs`` contract is that disabled instrumentation is
    compiled out of the hot loops: a module-global check plus, at span
    sites, one no-op context manager.  Measured as:

    * ``per_call_ns`` — the disabled path's cost per instrumentation
      call (a ``with obs.span(...)`` over the shared null span plus a
      guarded counter bump), microbenched in isolation;
    * ``calls_per_cycle`` — how many such calls one coordinator cycle of
      a ``small`` fleet actually makes, counted by running a cycle with
      tracing enabled (buffered) and draining the events/counters;
    * ``overhead_pct`` — their product over the tracing-off cycle wall
      time.  ``criterion_max_overhead_pct`` pins it below 2%.
    """
    from repro import obs
    from repro.fleet import FLEETS, FleetCoordinator, FleetSpec

    # Per-call disabled cost: the null-span with plus the guard branch.
    n = 50_000 if quick else 200_000
    obs.disable()

    def disabled_calls():
        for i in range(n):
            with obs.span("bench/x", i=i):
                pass
            if obs._ENABLED:
                obs.inc("bench/c")

    unit_s = _best_of(disabled_calls, max(3, rounds)) / n

    fleet = FleetSpec.from_mapping(FLEETS.get("small")())
    coordinator = FleetCoordinator(fleet, seed=7, backend="local")
    try:
        coordinator.run_cycles(1)  # warm: kernels compile
        # Count the instrumentation calls one cycle makes (span enter +
        # exit per event; counter bumps from the drained deltas — an
        # overcount for multi-increment bumps, i.e. conservative).
        obs.enable()
        try:
            coordinator.run_cycles(1)
            events = obs.drain_events()
            counters = obs.drain_counters()
        finally:
            obs.disable()
        calls = 2 * len(events) + int(sum(counters.values()))
        cycle_s = _best_of(lambda: coordinator.run_cycles(1), max(3, rounds))
    finally:
        obs.disable()
        coordinator.close()
    overhead_pct = 100.0 * calls * unit_s / cycle_s
    return {
        "seconds": cycle_s,
        "per_call_ns": unit_s * 1e9,
        "calls_per_cycle": calls,
        "trace_events_per_cycle": len(events),
        "overhead_pct": overhead_pct,
        "criterion_max_overhead_pct": 2.0,
    }


BENCHES = {
    "engine_step": bench_engine_step,
    "engine_batch_grid": bench_engine_batch_grid,
    "multi_chain_grid": bench_multi_chain_grid,
    "cluster_grid": bench_cluster_grid,
    "fleet_scale": bench_fleet_scale,
    "fleet_throughput": bench_fleet_throughput,
    "fleet_routing": bench_fleet_routing,
    "replay_add_sample": bench_replay,
    "training_slice": bench_training_slice,
    "obs_overhead": bench_obs_overhead,
}


def run_suite(quick: bool = False, rounds: int = 3) -> dict:
    """Execute every bench; returns the JSON-ready payload."""
    benches = {}
    for name, fn in BENCHES.items():
        benches[name] = fn(quick, rounds)
        benches[name]["criterion_min_speedup"] = CRITERIA.get(name)
    return {
        "format_version": FORMAT_VERSION,
        "mode": "quick" if quick else "full",
        "numpy": np.__version__,
        "calibration_seconds": calibrate(),
        "benches": benches,
    }


#: Shared CI runners are noisy; a measured speedup may undershoot its
#: criterion by this factor before the check fails.
CRITERION_TOLERANCE = 0.85


def check_against(result: dict, baseline: dict, max_slowdown: float) -> list[str]:
    """Regression messages vs. a committed baseline (empty = pass).

    Wall-clock comparisons are normalized by each run's
    ``calibration_seconds`` so a slower or busier machine does not read
    as a code regression.
    """
    problems = []
    calib_new = result.get("calibration_seconds") or 1.0
    calib_base = baseline.get("calibration_seconds") or calib_new
    for name, bench in result["benches"].items():
        criterion = bench.get("criterion_min_speedup")
        speedup = bench.get("speedup")
        if (
            criterion is not None
            and speedup is not None
            and not bench.get("criterion_waived")
            and speedup < CRITERION_TOLERANCE * criterion
        ):
            problems.append(
                f"{name}: speedup {speedup:.2f}x below the {criterion:.0f}x criterion"
            )
        max_overhead = bench.get("criterion_max_overhead_pct")
        overhead = bench.get("overhead_pct")
        if (
            max_overhead is not None
            and overhead is not None
            and not bench.get("criterion_waived")
            and overhead > max_overhead
        ):
            problems.append(
                f"{name}: tracing-off overhead {overhead:.3f}% above the "
                f"{max_overhead:.1f}% budget"
            )
        base = baseline.get("benches", {}).get(name)
        if base is None:
            continue
        if result.get("mode") != baseline.get("mode"):
            # Wall-clock comparisons only make sense between equal
            # workloads; criteria above still apply.
            continue
        norm_new = bench["seconds"] / calib_new
        norm_base = base["seconds"] / calib_base
        if norm_new > max_slowdown * norm_base:
            problems.append(
                f"{name}: {bench['seconds']:.4f}s (normalized {norm_new:.1f}) is "
                f">{max_slowdown:.1f}x the baseline {base['seconds']:.4f}s "
                f"(normalized {norm_base:.1f})"
            )
    return problems


def history_record(result: dict, pr: str) -> dict:
    """The compact per-PR trajectory record for ``BENCH_history.json``."""
    return {
        "pr": pr,
        "mode": result.get("mode"),
        "calibration_seconds": result.get("calibration_seconds"),
        "benches": {
            name: {
                "seconds": bench["seconds"],
                "speedup": bench.get("speedup"),
                **(
                    {"overhead_pct": bench["overhead_pct"]}
                    if "overhead_pct" in bench
                    else {}
                ),
            }
            for name, bench in result["benches"].items()
        },
    }


def append_history(path: Path, result: dict, pr: str) -> list[dict]:
    """Append (or replace, by PR label) this run in the trajectory file."""
    records: list[dict] = []
    if path.exists():
        records = json.loads(path.read_text())
        if not isinstance(records, list):
            raise ValueError(f"{path} must hold a JSON list of history records")
    records = [r for r in records if r.get("pr") != pr]
    records.append(history_record(result, pr))
    path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workloads")
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds")
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="result JSON path"
    )
    parser.add_argument(
        "--check-against", default=None, help="baseline JSON to compare with"
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=2.0,
        help="fail when a bench is this many times slower than the baseline",
    )
    parser.add_argument(
        "--history", default=None,
        help="append a {pr, benches} record to this trajectory JSON",
    )
    parser.add_argument(
        "--pr", default="dev",
        help="PR label for the --history record (existing record with the "
             "same label is replaced)",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick, rounds=args.rounds)
    for name, bench in result["benches"].items():
        extra = ""
        if bench.get("speedup") is not None:
            extra = f"  speedup={bench['speedup']:.1f}x"
        print(f"{name:20s} {bench['seconds']:.4f}s{extra}")

    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if args.history:
        records = append_history(Path(args.history), result, args.pr)
        print(f"appended {args.pr!r} to {args.history} ({len(records)} records)")

    if args.check_against:
        baseline = json.loads(Path(args.check_against).read_text())
        problems = check_against(result, baseline, args.max_slowdown)
        if problems:
            for p in problems:
                print(f"PERF REGRESSION: {p}", file=sys.stderr)
            return 1
        print("within baseline envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
