"""Scalar/loop reference implementations for speedup measurement.

These reproduce the pre-vectorization shape of the hot paths — a Python
loop per NF in the engine, one tree walk per leaf in the replay stack,
a rebuilt platform per episode — so the benchmark can report honest
in-run speedups (vectorized vs. loop) on the same machine and workload.
They are measurement fixtures, not production code.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.env import NFVEnv
from repro.hw.cache import capacity_miss_ratio, prefetch_efficiency
from repro.nfv.engine import PacketEngine
from repro.rl.replay import Transition, TransitionBatch
from repro.utils.rng import RngLike, as_generator


# -- engine: per-NF Python loop ------------------------------------------------


def reference_chain_step(
    engine: PacketEngine,
    chain,
    knobs,
    offered_pps: float,
    packet_bytes: float,
) -> float:
    """Achieved rate via the scalar per-NF loop (the seed implementation)."""
    llc = engine.server.llc
    p = engine.params
    llc_bytes = knobs.llc_fraction * llc.way_bytes * llc.allocatable_ways
    eff_llc, contention = engine.effective_llc_bytes(llc_bytes)

    pf = prefetch_efficiency(knobs.batch_size)
    pen_eff = llc.miss_penalty_cycles * (1.0 - pf)
    hit_eff = llc.hit_cycles * (1.0 - pf)
    ws = chain.total_state_bytes + knobs.batch_size * packet_bytes
    base_miss = capacity_miss_ratio(ws, eff_llc, locality=p.cache_locality)
    p_miss = float(min(1.0, base_miss * contention))

    cpps = []
    for i, nf in enumerate(chain.nfs):
        state_cycles = nf.state_lines_touched * p_miss * pen_eff
        touched = nf.touched_lines(packet_bytes, llc.line_bytes)
        if i == 0:
            p_hit = engine.dma_model.llc_spill_hit_ratio(knobs.dma_bytes, eff_llc)
            p_hit = float(max(0.0, p_hit * (1.0 - p_miss * 0.5)))
        else:
            p_hit = 1.0 - p_miss
        payload = touched * p.mem_factor * (p_hit * hit_eff + (1.0 - p_hit) * pen_eff)
        cold = p.cold_lines_per_batch * pen_eff / knobs.batch_size
        overhead = p.ring_call_cycles / knobs.batch_size + p.mbuf_cycles / math.sqrt(
            knobs.batch_size
        )
        cycles = nf.cycles_for_packet(packet_bytes) + overhead + state_cycles
        cycles += payload + cold
        if i > 0:
            cycles += p.inter_nf_handoff_cycles
        cpps.append(cycles)

    freq_hz = knobs.cpu_freq_ghz * 1e9
    rates = [knobs.cpu_share * freq_hz / c for c in cpps]
    nic_cap = engine.server.nic.max_pps(packet_bytes)
    admitted = min(offered_pps, nic_cap)
    delivery = engine.dma_model.delivery_ratio(knobs.dma_bytes, packet_bytes, admitted)
    return min(admitted * delivery, min(rates))


# -- nn: per-parameter-array networks and optimizer loops ----------------------


class _RefDenseLayer:
    """Seed dense layer: independently-allocated weight/bias arrays."""

    def __init__(self, weights, bias, activation):
        self.weights = weights
        self.bias = bias
        self.activation = activation

    @property
    def in_dim(self):
        return self.weights.shape[0]

    @property
    def out_dim(self):
        return self.weights.shape[1]


class ReferenceMLP:
    """The seed MLP: per-layer arrays, temporaries in forward/backward."""

    def __init__(self, layer_sizes, activations=None, *, rng=None, final_init_scale=3e-3):
        n_layers = len(layer_sizes) - 1
        if activations is None:
            activations = ["relu"] * (n_layers - 1) + ["linear"]
        gen = as_generator(rng)
        self.layers = []
        for i in range(n_layers):
            fan_in, fan_out = layer_sizes[i], layer_sizes[i + 1]
            bound = final_init_scale if i == n_layers - 1 else 1.0 / np.sqrt(fan_in)
            w = gen.uniform(-bound, bound, size=(fan_in, fan_out))
            b = gen.uniform(-bound, bound, size=(fan_out,))
            self.layers.append(_RefDenseLayer(w, b, activations[i]))
        self._cache = None

    @property
    def in_dim(self):
        return self.layers[0].in_dim

    @property
    def out_dim(self):
        return self.layers[-1].out_dim

    def forward(self, x, *, cache=True):
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cache_list = []
        a = x
        for layer in self.layers:
            z = a @ layer.weights + layer.bias
            if layer.activation == "relu":
                out = np.maximum(z, 0.0)
            elif layer.activation == "tanh":
                out = np.tanh(z)
            else:
                out = z
            cache_list.append((a, z, out))
            a = out
        self._cache = cache_list if cache else None
        return a

    def __call__(self, x):
        return self.forward(x)

    def backward(self, grad_out):
        grad = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        param_grads = [None] * len(self.layers)
        for i in reversed(range(len(self.layers))):
            layer = self.layers[i]
            a_in, z, a_out = self._cache[i]
            if layer.activation == "relu":
                act_grad = (z > 0.0).astype(z.dtype)
            elif layer.activation == "tanh":
                act_grad = 1.0 - a_out * a_out
            else:
                act_grad = np.ones_like(z)
            dz = grad * act_grad
            dw = a_in.T @ dz
            db = dz.sum(axis=0)
            grad = dz @ layer.weights.T
            param_grads[i] = (dw, db)
        return param_grads, grad

    def input_gradient(self, x, grad_out=None):
        out = self.forward(x, cache=True)
        if grad_out is None:
            grad_out = np.ones_like(out)
        _, gin = self.backward(grad_out)
        return gin

    def get_params(self):
        out = []
        for layer in self.layers:
            out.append(layer.weights)
            out.append(layer.bias)
        return out

    def set_params(self, params):
        for i, layer in enumerate(self.layers):
            layer.weights = params[2 * i].copy()
            layer.bias = params[2 * i + 1].copy()

    def copy_params(self):
        return [p.copy() for p in self.get_params()]

    def soft_update_from(self, source, tau):
        for mine, theirs in zip(self.get_params(), source.get_params()):
            mine *= 1.0 - tau
            mine += tau * theirs

    def clone(self):
        sizes = [self.in_dim] + [layer.out_dim for layer in self.layers]
        acts = [layer.activation for layer in self.layers]
        out = ReferenceMLP(sizes, acts, rng=0)
        out.set_params(self.copy_params())
        return out


class ReferenceAdam:
    """The seed Adam: a Python loop over per-layer parameter arrays."""

    def __init__(self, net, lr=1e-3, beta1=0.9, beta2=0.999, eps=1e-8, *, grad_clip=10.0):
        self.net = net
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p) for p in net.get_params()]
        self._v = [np.zeros_like(p) for p in net.get_params()]
        self._t = 0

    def step(self, param_grads) -> None:
        flat = []
        for dw, db in param_grads:
            flat.append(dw)
            flat.append(db)
        params = self.net.get_params()
        if self.grad_clip is not None:
            norm = np.sqrt(sum(float(np.sum(g * g)) for g in flat))
            if norm > self.grad_clip:
                scale = self.grad_clip / (norm + 1e-12)
                flat = [g * scale for g in flat]
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, flat, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


# -- replay: list storage + per-leaf tree walks --------------------------------


class ReferenceSumTree:
    """The seed sum tree: one Python walk per set / per sampled mass."""

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._nodes = np.zeros(2 * self.capacity - 1, dtype=np.float64)

    @property
    def total(self) -> float:
        return float(self._nodes[0])

    def set(self, slot: int, priority: float) -> None:
        idx = slot + self.capacity - 1
        delta = priority - self._nodes[idx]
        self._nodes[idx] = priority
        while idx > 0:
            idx = (idx - 1) // 2
            self._nodes[idx] += delta

    def get(self, slot: int) -> float:
        return float(self._nodes[slot + self.capacity - 1])

    def find_prefix(self, mass: float) -> int:
        mass = float(np.clip(mass, 0.0, np.nextafter(self.total, 0.0)))
        idx = 0
        while idx < self.capacity - 1:
            left = 2 * idx + 1
            if mass < self._nodes[left] or self._nodes[2 * idx + 2] == 0.0:
                idx = left
            else:
                mass -= self._nodes[left]
                idx = left + 1
        return idx - (self.capacity - 1)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        bounds = np.linspace(0.0, self.total, n + 1)
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            out[i] = self.find_prefix(rng.uniform(bounds[i], bounds[i + 1]))
        return out


class ReferencePrioritizedReplayBuffer:
    """The seed PER buffer: list-of-Transition storage, np.stack per batch."""

    def __init__(
        self,
        capacity: int,
        *,
        alpha: float = 0.6,
        beta0: float = 0.4,
        beta_steps: int = 100_000,
        eps: float = 1e-3,
        rng: RngLike = None,
    ):
        self.capacity = int(capacity)
        self.alpha = alpha
        self.beta0 = beta0
        self.beta_steps = beta_steps
        self.eps = eps
        self._tree = ReferenceSumTree(self.capacity)
        self._storage: list[Transition | None] = [None] * self.capacity
        self._next = 0
        self._size = 0
        self._max_priority = 1.0
        self._samples_drawn = 0
        self._rng = as_generator(rng)

    def __len__(self) -> int:
        return self._size

    @property
    def beta(self) -> float:
        frac = min(1.0, self._samples_drawn / self.beta_steps)
        return self.beta0 + (1.0 - self.beta0) * frac

    def add(self, transition: Transition, priority: float | None = None) -> int:
        raw = self._max_priority if priority is None else abs(float(priority))
        raw = max(raw, self.eps)
        self._max_priority = max(self._max_priority, raw)
        slot = self._next
        self._storage[slot] = transition
        self._tree.set(slot, raw**self.alpha)
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        return slot

    def extend(self, transitions, priorities=None):
        slots = []
        for i, t in enumerate(transitions):
            slots.append(self.add(t, None if priorities is None else priorities[i]))
        return slots

    def sample(self, batch_size: int) -> TransitionBatch:
        idx = self._tree.sample(batch_size, self._rng)
        self._samples_drawn += batch_size
        total = self._tree.total
        probs = np.asarray([self._tree.get(int(i)) for i in idx]) / total
        weights = np.power(self._size * np.maximum(probs, 1e-12), -self.beta)
        weights /= weights.max()
        items = [self._storage[int(i)] for i in idx]
        return TransitionBatch(
            states=np.stack([t.state for t in items]),
            actions=np.stack([t.action for t in items]),
            rewards=np.asarray([t.reward for t in items], dtype=np.float64),
            next_states=np.stack([t.next_state for t in items]),
            dones=np.asarray([t.done for t in items], dtype=np.float64),
            indices=np.asarray(idx, dtype=np.int64),
            weights=weights,
        )

    def update_priorities(self, indices, td_errors) -> None:
        for slot, err in zip(np.asarray(indices), np.asarray(td_errors)):
            raw = max(abs(float(err)), self.eps)
            self._max_priority = max(self._max_priority, raw)
            self._tree.set(int(slot), raw**self.alpha)


def reference_node_step(node, offered, dt_s: float = 1.0):
    """The pre-kernel ``Node.step``: one scalar engine call per chain.

    A faithful copy of the seed implementation (per-chain
    ``engine.step`` loop, ring/meter bookkeeping, power attribution) so
    the multi-chain bench reports an honest kernel-vs-loop speedup.
    """
    from repro.hw.cache import contention_factor

    total_demand = 0.0
    for name, hosted in node._chains.items():
        pps, pkt = offered.get(name, (0.0, 1518.0))
        total_demand += (
            hosted.knobs.batch_size * pkt
            + hosted.chain.total_state_bytes
            + hosted.knobs.dma_bytes * 0.25
        )
    contention = contention_factor(total_demand, node.server.llc.size_bytes)

    params = node.engine.params
    infra_util = (
        params.infra_util_poll
        if node.engine.polling.value == "poll"
        else params.infra_util_adaptive
    )
    infra_busy = params.infra_cores * infra_util
    samples = {}
    busy_cores_total = infra_busy
    allocated_total = params.infra_cores
    for name, hosted in node._chains.items():
        pps, pkt = offered.get(name, (0.0, 1518.0))
        sample = node.engine.step(
            hosted.chain,
            hosted.knobs,
            pps,
            pkt,
            dt_s,
            llc_bytes=node.llc_bytes_for(name),
            contention=contention,
            include_power=False,
        )
        hosted.rx_ring.offer(
            min(pps, sample.achieved_pps + sample.dropped_pps),
            max(sample.achieved_pps, 1.0),
            dt_s,
        )
        samples[name] = sample
        busy_cores_total += max(0.0, sample.cpu_cores_busy - infra_busy)
        allocated_total += hosted.knobs.cpu_share * len(hosted.chain)

    freqs = [h.knobs.cpu_freq_ghz for h in node._chains.values()]
    freq = sum(freqs) / len(freqs) if freqs else node.server.cpu.base_freq_ghz
    power_w = node.engine.node_power(busy_cores_total, allocated_total, freq)
    energy_j = power_w * dt_s
    node.meter.record(power_w, dt_s, sum(s.achieved_pps * dt_s for s in samples.values()))

    weights = {name: max(s.cpu_cores_busy, 1e-9) for name, s in samples.items()}
    wsum = sum(weights.values())
    for name, sample in samples.items():
        share = weights[name] / wsum if wsum > 0 else 1.0 / len(samples)
        sample.power_w = power_w * share
        sample.energy_j = energy_j * share
        hosted = node._chains[name]
        hosted.meter.record(sample.power_w, dt_s, sample.achieved_pps * dt_s)
        hosted.last_sample = sample
    return samples


def reference_cluster_step(nodes, per_node_offered, dt_s: float = 1.0):
    """The pre-cluster-kernel interval: a Python loop over nodes.

    One ``Node.step_all`` call per node (itself the PR-3 per-node
    kernel), which is exactly what ``Cluster.step`` and
    ``SdnController.run_interval`` executed before the fused
    cluster-wide pass — so the ``cluster_grid`` bench reports an honest
    kernel-vs-per-node-loop speedup.
    """
    samples = {}
    for node, offered in zip(nodes, per_node_offered):
        samples.update(node.step_all(offered, dt_s))
    return samples


def reference_clamped(self, ranges=None, cpu=None):
    """Seed ``KnobSettings.clamped``: scalar np.clip per knob."""
    from repro.nfv.knobs import DEFAULT_RANGES, KnobSettings

    ranges = ranges or DEFAULT_RANGES
    freq = float(np.clip(self.cpu_freq_ghz, ranges.min_freq_ghz, ranges.max_freq_ghz))
    if cpu is not None:
        freq = reference_clamp_frequency(cpu, freq)
    return KnobSettings(
        cpu_share=float(np.clip(self.cpu_share, ranges.min_cpu_share, ranges.max_cpu_share)),
        cpu_freq_ghz=freq,
        llc_fraction=float(
            np.clip(self.llc_fraction, ranges.min_llc_fraction, ranges.max_llc_fraction)
        ),
        dma_mb=float(np.clip(self.dma_mb, ranges.min_dma_mb, ranges.max_dma_mb)),
        batch_size=int(np.clip(round(self.batch_size), ranges.min_batch, ranges.max_batch)),
    )


def reference_clamp_frequency(spec, freq_ghz: float) -> float:
    """Seed ``CpuSpec.clamp_frequency``: ndarray argmin over the ladder."""
    ladder = np.asarray(spec.freq_ladder_ghz)
    return float(ladder[int(np.argmin(np.abs(ladder - freq_ghz)))])


def reference_repartition_llc(self) -> None:
    """Seed ``Node._repartition_llc``: rebuild the CLOS layout every call."""
    if not self._chains:
        return
    shares = {n: h.knobs.llc_fraction for n, h in self._chains.items()}
    total_ways = sum(self.cache.ways_for_fraction(f) for f in shares.values())
    if total_ways > self.server.llc.allocatable_ways:
        scale = self.server.llc.allocatable_ways / total_ways
        shares = {n: max(1e-6, f * scale) for n, f in shares.items()}
        while (
            sum(self.cache.ways_for_fraction(f) for f in shares.values())
            > self.server.llc.allocatable_ways
        ):
            biggest = max(shares, key=lambda n: shares[n])
            shares[biggest] = max(1e-6, shares[biggest] * 0.9)
    self.cache.allocate(shares)


class RebuildingEnv(NFVEnv):
    """An environment that rebuilds the platform every episode.

    Reproduces the pre-reuse reset cost so the training-slice benchmark
    can price the rebuild-free episodes against the seed behaviour.
    """

    def reset(self, **kwargs):
        self.controller = None
        return super().reset(**kwargs)


# -- fleet: pickled shard transport --------------------------------------------


def reference_shard_worker(config, conn) -> None:
    """The pre-arena shard worker loop: each ``run`` reply pickles the
    complete :class:`~repro.fleet.shard.ShardReport` through the pipe
    (the seed transport the shared-memory arenas replaced)."""
    from repro.fleet.shard import ShardSim, _error_payload

    try:
        sim = ShardSim(config)
    except Exception as exc:
        try:
            conn.send(_error_payload(exc))
        except (BrokenPipeError, OSError):
            pass
        return
    conn.send(("ready", config.name))
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                conn.send(("stopped", config.name))
                return
            try:
                if kind == "run":
                    conn.send(("report", sim.run(msg[1], msg[2])))
                elif kind == "deploy":
                    sim.deploy(msg[1])
                    conn.send(("ok",))
                elif kind == "undeploy":
                    conn.send(("ticket", sim.undeploy(msg[1])))
                elif kind == "knobs":
                    sim.set_knobs(msg[1])
                    conn.send(("ok",))
                else:
                    conn.send(("error", f"unknown message {kind!r}"))
            except Exception as exc:
                conn.send(_error_payload(exc))
    except (EOFError, KeyboardInterrupt):
        return


class ReferenceShardWorker:
    """The seed process-backed shard handle: pickled reports, no arena.

    Drop-in for :class:`~repro.fleet.shard.ShardWorker` (monkeypatched
    into the coordinator by the ``fleet_throughput`` bench) so the
    measured ratio isolates the transport: zero-copy shared-memory
    telemetry vs. pickling every report through the pipe.
    """

    backend = "process"

    def __init__(self, config, *, mp_context=None):
        import multiprocessing as mp

        ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
        self.name = config.name
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._proc = ctx.Process(
            target=reference_shard_worker, args=(config, child_conn), daemon=True
        )
        self._proc.start()
        self._in_flight = False
        self._closed = False
        try:
            self._recv("ready")
        except BaseException:
            self.close()
            raise

    def _recv(self, expect: str):
        try:
            msg = self._conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard {self.name!r} worker died without replying"
            ) from None
        if msg[0] == "error":
            detail = msg[1]
            if len(msg) > 2 and msg[2]:
                detail = f"{detail}\n--- worker traceback ---\n{msg[2]}"
            raise RuntimeError(f"shard {self.name!r} worker: {detail}")
        if msg[0] != expect:
            raise RuntimeError(
                f"shard {self.name!r}: expected {expect!r}, got {msg[0]!r}"
            )
        return msg[1] if len(msg) > 1 else None

    def begin_run(self, start: int, n: int) -> None:
        if self._in_flight:
            raise RuntimeError("previous run not collected")
        self._conn.send(("run", start, n))
        self._in_flight = True

    def finish_run(self):
        if not self._in_flight:
            raise RuntimeError("no run in flight")
        self._in_flight = False
        return self._recv("report")

    def deploy(self, ticket) -> None:
        self._conn.send(("deploy", ticket))
        self._recv("ok")

    def undeploy(self, name: str):
        self._conn.send(("undeploy", name))
        return self._recv("ticket")

    def set_knobs(self, updates) -> None:
        self._conn.send(("knobs", dict(updates)))
        self._recv("ok")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        else:
            try:
                if self._conn.poll(2.0):
                    self._conn.recv()
            except (EOFError, OSError):
                pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.terminate()


# -- fleet: per-pair scalar routing --------------------------------------------


def reference_route_tables(topology, k: int = 1):
    """Per-pair scalar routing: one Dijkstra per source, Python k-vias.

    The pre-``RoutingTable`` shape: every source shard runs its own
    heap-based Dijkstra over a neighbor dict, then each pair scans every
    via shard in a Python loop for the ``k - 1`` best one-via
    alternative latencies.  Returns ``(dist, alternatives)`` as nested
    dicts keyed by shard name, matching what the vectorized tables hold
    so the bench can cross-check them.
    """
    import heapq

    names = [s.name for s in topology.shards]
    neighbors: dict[str, list[tuple[str, float]]] = {n: [] for n in names}
    for link in topology.edges():
        neighbors[link.a].append((link.b, link.latency_s))
        neighbors[link.b].append((link.a, link.latency_s))
    dist: dict[str, dict[str, float]] = {}
    for src in names:
        best = {src: 0.0}
        heap = [(0.0, src)]
        while heap:
            d, cur = heapq.heappop(heap)
            if d > best.get(cur, math.inf):
                continue
            for nxt, w in neighbors[cur]:
                alt = d + w
                if alt < best.get(nxt, math.inf):
                    best[nxt] = alt
                    heapq.heappush(heap, (alt, nxt))
        dist[src] = {dst: best.get(dst, math.inf) for dst in names}
    alts: dict[str, dict[str, list[float]]] = {}
    for src in names:
        row: dict[str, list[float]] = {}
        for dst in names:
            vias = sorted(
                dist[src][m] + dist[m][dst]
                for m in names
                if m != src and m != dst
            )
            row[dst] = [dist[src][dst]] + vias[: max(0, k - 1)]
        alts[src] = row
    return dist, alts
