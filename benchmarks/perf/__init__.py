"""Hot-path micro-benchmark suite (engine, replay, end-to-end training).

Run ``python benchmarks/perf/bench_hotpath.py --quick`` with
``PYTHONPATH=src``; results land in ``BENCH_hotpath.json`` and the
committed baseline lives next to this package.
"""
