"""Figure 7: Minimum-Energy SLA training curves.

Paper shape: the model learns to hold the 7.5 Gbps floor while walking
energy down; at convergence throughput sits just above the constraint and
per-episode energy is far below the starting configurations'.
"""

from repro.experiments import fig7_min_energy


def test_fig7_mine_training(benchmark, once, capsys):
    result, report = once(
        benchmark, fig7_min_energy, episodes=80, test_every=10, episode_len=16, seed=23
    )
    with capsys.disabled():
        print()
        print(report.render())
    hist = result.history
    assert hist.final.sla_satisfied_frac > 0.8
    assert hist.final.throughput_gbps > 7.0
    # Energy per interval well below the baseline's ~81.5 J.
    assert hist.final.energy_j / 16 < 55.0
