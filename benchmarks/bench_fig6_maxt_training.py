"""Figure 6: Maximum-Throughput SLA training curves.

Paper shape: tested throughput climbs over training while energy stays
pinned under the SLA cap; batch size / LLC / DMA knobs are tuned up and
CPU frequency settles below maximum to respect the energy constraint.
"""

from repro.experiments import fig6_max_throughput


def test_fig6_maxt_training(benchmark, once, capsys):
    result, report = once(
        benchmark, fig6_max_throughput, episodes=60, test_every=10, episode_len=16
    )
    with capsys.disabled():
        print()
        print(report.render())
    hist = result.history
    assert hist.final.throughput_gbps > 1.8 * hist.records[0].throughput_gbps
    assert hist.final.sla_satisfied_frac > 0.9
    # Knobs tuned up from the untrained policy's midpoint.
    assert hist.final.batch_size > hist.records[0].batch_size
