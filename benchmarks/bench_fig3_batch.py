"""Figure 3: batch-size micro-benchmark (throughput/energy + misses).

Paper shape: throughput rises with batch size to a peak near 150-200
packets and then declines; the miss curve is U-shaped; fixed-volume
energy is minimized near the throughput peak.
"""

import numpy as np

from repro.experiments import fig3_batch_sweep


def test_fig3_batch_sweep(benchmark, once, capsys):
    rows, report = once(benchmark, fig3_batch_sweep)
    with capsys.disabled():
        print()
        print(report.render())
    ts = [r.throughput_gbps for r in rows]
    ms = [r.misses_per_packet for r in rows]
    peak = int(np.argmax(ts))
    assert 0 < peak < len(ts) - 1
    assert 100 <= rows[peak].batch_size <= 250
    mmin = int(np.argmin(ms))
    assert 0 < mmin < len(ms) - 1
