"""Ablation: Q-learning action-space discretization level (O(k^5)).

Expectation per §4.3: all levels learn something, but the visited-table
size explodes with k while per-entry data thins out — the Q-table grows
by an order of magnitude from k=2 to k=4 without a corresponding
throughput win, which is exactly why GreenNFV moves to DDPG's continuous
actions.
"""

from repro.experiments.ablations import ablation_discretization


def test_ablation_discretization(benchmark, once, capsys):
    rows, report = once(
        benchmark, ablation_discretization, levels=(2, 3, 4), episodes=100, test_every=50
    )
    with capsys.disabled():
        print()
        print(report.render())
    by_k = {r.variant.split(" ")[0]: r for r in rows}
    # Every level learns something (the random policy hovers near 0.2).
    assert all(r.final_reward > 0.25 for r in rows)
    # Coarse grids cannot express the best settings the finer grid can:
    # k=2 is limited to range extremes.
    assert by_k["k=2"].final_throughput_gbps < 9.5
