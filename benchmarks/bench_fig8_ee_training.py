"""Figure 8: Energy-Efficiency SLA training curves (with efficiency panel).

Paper shape: unconstrained maximization of T/E; tested efficiency climbs
steadily over training and ends well above the untrained policy's.
"""

from repro.experiments import fig8_energy_efficiency


def test_fig8_ee_training(benchmark, once, capsys):
    result, report = once(
        benchmark, fig8_energy_efficiency, episodes=60, test_every=10, episode_len=16
    )
    with capsys.disabled():
        print()
        print(report.render())
    hist = result.history
    assert hist.final.energy_efficiency > 1.3 * hist.records[0].energy_efficiency
    assert hist.final.throughput_gbps > hist.records[0].throughput_gbps
