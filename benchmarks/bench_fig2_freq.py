"""Figure 2: DVFS micro-benchmark (throughput + energy vs. frequency).

Paper shape: both packet-processing rate and energy rise with frequency,
non-linearly (the energy curve is convex through the cubic dynamic-power
term).
"""

from repro.experiments import fig2_freq_sweep


def test_fig2_freq_sweep(benchmark, once, capsys):
    rows, report = once(benchmark, fig2_freq_sweep)
    with capsys.disabled():
        print()
        print(report.render())
    ts = [r.throughput_gbps for r in rows]
    es = [r.energy_j for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(ts, ts[1:]))
    assert all(b >= a for a, b in zip(es, es[1:]))
    assert (es[-1] - es[-2]) > (es[1] - es[0])  # convexity
