"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's figures and prints the
same rows/series the paper reports.  The heavyweight harnesses (RL
training) run with ``benchmark.pedantic(rounds=1)`` — the quantity being
benchmarked is the experiment pipeline itself, and its *output tables*
are the artifact; wall-clock numbers are a by-product.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
