"""Ablation: per-knob contribution to the learned MaxT policy.

Expectation: the full five-knob action space wins; freezing the CPU
share (the strongest single lever at line-rate load) costs the most
throughput.
"""

from repro.experiments.ablations import ablation_knobs


def test_ablation_knobs(benchmark, once, capsys):
    rows, report = once(benchmark, ablation_knobs, episodes=40, test_every=20)
    with capsys.disabled():
        print()
        print(report.render())
    by_variant = {r.variant: r for r in rows}
    full = by_variant["all-knobs"]
    assert full.final_reward > 0.55
    # Freezing cpu_share at the Baseline's 1 core must cost throughput.
    frozen_share = by_variant["frozen:cpu_share"]
    assert frozen_share.final_throughput_gbps < full.final_throughput_gbps
