"""Figure 11: amortized energy saving including RL training cost.

Paper shape: with the one-off training energy charged against the
deployment, net savings are already positive within the first hour
(paper: 23%) and climb toward the steady-state saving (paper: 62% by
hour 6).
"""

import numpy as np

from repro.experiments import fig11_energy_saving


def test_fig11_energy_saving(benchmark, once, capsys):
    result, report = once(
        benchmark, fig11_energy_saving, train_episodes=60, measure_intervals=30, seed=17
    )
    with capsys.disabled():
        print()
        print(report.render())
    assert np.all(np.diff(result.saving_pct) > 0)  # monotone amortization
    assert result.saving_pct[0] > 0.0  # positive within hour 1
    assert result.saving_pct[-1] > 30.0  # strong saving by hour 6
    assert result.steady_state_saving_pct > 40.0
