"""Figure 1: LLC-split micro-benchmark (miss rate / throughput / Energy-MP).

Paper shape: C1 (13 Mpps) is fast at the flow-proportional (90%, 10%)
split; shrinking C1's share inflates its miss rate, collapses its
throughput and inflates its Energy/MP, while the small C2 flow stays
stable.
"""

from repro.experiments import fig1_llc_split


def test_fig1_llc_split(benchmark, once, capsys):
    rows, report = once(benchmark, fig1_llc_split)
    with capsys.disabled():
        print()
        print(report.render())
    assert rows[0].c1_throughput_gbps > 2.5 * rows[-1].c1_throughput_gbps
    assert rows[-1].c1_energy_per_mp > rows[0].c1_energy_per_mp
    assert rows[-1].c1_miss_rate > rows[0].c1_miss_rate
