"""Ablation: per-chain vs per-NF action-space granularity.

Eq. (7) defines GreenNFV's action space per NF; the evaluation deploys
per chain.  Expectation: both granularities learn; the per-NF space is
competitive despite being 3x larger, because targeted allocation
(starving the NAT to feed the IDS) compensates for the harder
exploration problem.
"""

from repro.experiments.ablations import ablation_granularity


def test_ablation_granularity(benchmark, once, capsys):
    rows, report = once(benchmark, ablation_granularity, episodes=50, test_every=25)
    with capsys.disabled():
        print()
        print(report.render())
    by_variant = {r.variant: r for r in rows}
    chain = by_variant["per-chain (5 knobs)"]
    per_nf = by_variant["per-NF (15 knobs)"]
    assert chain.final_reward > 0.5
    assert per_nf.final_reward > 0.5
    # Per-NF must stay within 25% of per-chain at this budget.
    assert per_nf.final_throughput_gbps > 0.75 * chain.final_throughput_gbps
